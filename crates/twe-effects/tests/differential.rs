//! Differential tests: the id-based RPL relations must agree with the
//! retained element-wise implementation (`rpl::oracle`) on arbitrary RPL
//! pairs, including wildcard suffixes, and the arena must intern
//! consistently under concurrency.

use proptest::prelude::*;
use twe_effects::rpl::oracle;
use twe_effects::{arena, Rpl, RplElement};

fn arb_element() -> impl Strategy<Value = RplElement> {
    prop_oneof![
        (0..5u8).prop_map(|i| RplElement::name(["DA", "DB", "DC", "DD", "DE"][i as usize])),
        (0..5i64).prop_map(RplElement::Index),
        Just(RplElement::Star),
        Just(RplElement::AnyIndex),
    ]
}

fn arb_elements() -> impl Strategy<Value = Vec<RplElement>> {
    proptest::collection::vec(arb_element(), 0..8)
}

fn arb_concrete_elements() -> impl Strategy<Value = Vec<RplElement>> {
    proptest::collection::vec(
        prop_oneof![
            (0..5u8).prop_map(|i| RplElement::name(["DA", "DB", "DC", "DD", "DE"][i as usize])),
            (0..5i64).prop_map(RplElement::Index),
        ],
        0..8,
    )
}

proptest! {
    /// Id-based disjointness agrees with the element-wise oracle on
    /// arbitrary pairs, wildcard suffixes included.
    #[test]
    fn disjoint_matches_oracle(a in arb_elements(), b in arb_elements()) {
        let (ra, rb) = (Rpl::new(a.clone()), Rpl::new(b.clone()));
        prop_assert_eq!(
            ra.disjoint(&rb),
            !oracle::overlaps(&a, &b),
            "disjoint mismatch for {:?} vs {:?}", ra, rb
        );
        // And through the cache: a second query must answer the same.
        prop_assert_eq!(ra.disjoint(&rb), !oracle::overlaps(&a, &b));
    }

    /// Id-based inclusion agrees with the element-wise oracle in both
    /// directions.
    #[test]
    fn includes_matches_oracle(a in arb_elements(), b in arb_elements()) {
        let (ra, rb) = (Rpl::new(a.clone()), Rpl::new(b.clone()));
        prop_assert_eq!(
            ra.includes(&rb),
            oracle::includes(&a, &b),
            "includes mismatch for {:?} ⊇ {:?}", ra, rb
        );
        prop_assert_eq!(rb.includes(&ra), oracle::includes(&b, &a));
        prop_assert_eq!(ra.included_in(&rb), oracle::includes(&b, &a));
    }

    /// The concrete-concrete fast path (id inequality) agrees with the
    /// oracle's full scan.
    #[test]
    fn concrete_fast_path_matches_oracle(
        a in arb_concrete_elements(), b in arb_concrete_elements()
    ) {
        let (ra, rb) = (Rpl::new(a.clone()), Rpl::new(b.clone()));
        prop_assert_eq!(ra.disjoint(&rb), !oracle::overlaps(&a, &b));
        prop_assert_eq!(ra.includes(&rb), oracle::includes(&a, &b));
        prop_assert_eq!(ra == rb, a == b, "interned equality must be element equality");
    }

    /// `starts_with` (element slice) agrees with a direct slice compare, and
    /// the O(1) id-based prefix test agrees with it for wildcard-free
    /// prefixes.
    #[test]
    fn starts_with_matches_oracle(
        a in arb_elements(), p in arb_concrete_elements()
    ) {
        let ra = Rpl::new(a.clone());
        let expected = a.len() >= p.len() && a[..p.len().min(a.len())] == p[..];
        prop_assert_eq!(ra.starts_with(&p), expected);
        let pid = arena::intern_path(&p);
        prop_assert_eq!(
            ra.starts_with_id(pid),
            ra.max_wildcard_free_prefix().len() >= p.len()
                && ra.max_wildcard_free_prefix()[..p.len()] == p[..],
            "starts_with_id mismatch for {:?} / {:?}", ra, p
        );
    }

    /// Interning round-trips the element list exactly.
    #[test]
    fn elements_roundtrip(a in arb_elements()) {
        let r = Rpl::new(a.clone());
        prop_assert_eq!(r.elements(), &a[..]);
        let reparsed = Rpl::parse(&format!("{r}"));
        prop_assert_eq!(reparsed, r);
    }
}

/// Concurrent interning stress: many threads race to intern overlapping
/// families of RPLs; every thread must observe identical ids, and the
/// relations must stay consistent with the oracle throughout.
#[test]
fn concurrent_arena_interning_stress() {
    let make = |t: usize, i: i64| -> Vec<RplElement> {
        let mut v = vec![
            RplElement::name("Stress"),
            RplElement::name(["P", "Q", "R"][t % 3]),
            RplElement::Index(i % 32),
        ];
        if i % 5 == 0 {
            v.push(RplElement::Star);
        }
        v
    };
    let handles: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                (0..256)
                    .map(|i| {
                        let elems = make(t, i);
                        let r = Rpl::new(elems.clone());
                        // Exercise the relations under concurrency too.
                        let probe = Rpl::new(make((t + 1) % 8, i + 1));
                        assert_eq!(
                            r.disjoint(&probe),
                            !oracle::overlaps(&elems, probe.elements())
                        );
                        (r.prefix_id(), r)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let results: Vec<Vec<(arena::RplId, Rpl)>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Threads t and t+3 intern identical element lists (same t mod 3), so
    // they must observe identical ids.
    for t in 0..5 {
        assert_eq!(
            results[t],
            results[t + 3],
            "threads {t} and {} disagree",
            t + 3
        );
    }
    // Every id resolves back to the elements it was interned from.
    for row in &results {
        for (id, r) in row {
            assert_eq!(arena::path(*id), r.max_wildcard_free_prefix());
            assert_eq!(arena::depth(*id), r.max_wildcard_free_prefix().len());
        }
    }
}
