//! Regenerates the tables behind every figure of the TWE evaluation.
//!
//! ```text
//! figures [--fig 6.1|6.2|6.3|6.4|7.1|all] [--quick] [--json out.json]
//! ```
//!
//! `--quick` shrinks the workloads so the whole sweep finishes in a couple of
//! minutes on a laptop; without it the workloads approximate the paper's
//! sizes (50 000-point K-Means, 2048×2048 images, 400 000-edge SSCA2, …).

use twe_bench::{print_rows, run_figures};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                which = args.get(i + 1).cloned().unwrap_or_else(|| "all".into());
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--json" => {
                json_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--fig 6.1|6.2|6.3|6.4|7.1|all] [--quick] [--json out.json]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    eprintln!(
        "# regenerating figure(s) {which} ({} workloads), host parallelism = {}",
        if quick { "quick" } else { "full-size" },
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let rows = run_figures(&which, quick);
    print_rows(&rows);
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&rows).expect("serialize rows");
        std::fs::write(&path, json).expect("write JSON output");
        eprintln!("# wrote {path}");
    }
}
