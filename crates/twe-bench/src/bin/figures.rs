//! Regenerates the tables behind every figure of the TWE evaluation.
//!
//! ```text
//! figures [--fig 6.1|6.2|6.3|6.4|7.1|conflict|submit|intern|reclaim|service|backlog|all]
//!         [--quick] [--json out.json] [--conflict-json BENCH_conflict.json]
//!         [--submit-json BENCH_submit.json] [--intern-json BENCH_intern.json]
//!         [--reclaim-json BENCH_reclaim.json] [--service-json BENCH_service.json]
//!         [--backlog-json BENCH_backlog.json]
//! ```
//!
//! `--quick` shrinks the workloads so the whole sweep finishes in a couple of
//! minutes on a laptop; without it the workloads approximate the paper's
//! sizes (50 000-point K-Means, 2048×2048 images, 400 000-edge SSCA2, …).
//!
//! `--fig conflict` runs only the conflict-test microbenchmark: id-based vs
//! element-wise RPL disjointness on concrete, wildcard-mix and `P:[?]`
//! workloads, plus summary-filtered vs all-pairs `EffectSet`
//! non-interference on disjoint sets; `--conflict-json` additionally writes
//! its rows as a JSON throughput record (`BENCH_conflict.json` in the
//! scheduled CI smoke job, uploaded as an artifact so the perf trajectory is
//! tracked).
//!
//! `--fig submit` runs only the batched-admission microbenchmark: per-task
//! `Scheduler::submit` vs one-round `submit_batch` on disjoint fan-out waves
//! of 64 / 512 / 4096 tasks, on both schedulers, plus the tree scheduler's
//! parallel-admission rows (an 8-anchor sharded wave descended inline vs
//! through a 1/2/4/8-worker admission pool; quick mode keeps one narrow
//! pooled row as a dispatch-correctness probe) and the root-plane sharding
//! rows (tenant-disjoint per-task submit traffic from 1/2/4/8 concurrent
//! submitting threads, sharded root plane vs the single-root baseline;
//! quick mode keeps one 4-thread correctness row); `--submit-json` writes
//! the rows as `BENCH_submit.json` (also a CI smoke-job artifact).
//!
//! `--fig intern` runs only the first-intern scaling microbenchmark:
//! cold-start interning of fresh `Data:[i]:[j]` subtrees at 1/2/4/8 threads,
//! the sharded arena vs a single-lock baseline replica; `--intern-json`
//! writes the rows as `BENCH_intern.json` (also a CI smoke-job artifact).
//!
//! `--fig reclaim` runs only the dynamic-region churn microbenchmark:
//! create/drop churn of `__DynRegion` ids at 1/2/4 churn threads under two
//! pinned reader threads running relation walks, the epoch reclaimer vs the
//! leaking baseline (bounded vs unbounded arena footprint);
//! `--reclaim-json` writes the rows as `BENCH_reclaim.json` (also a CI
//! smoke-job artifact).
//!
//! `--fig service` runs only the open-loop service-latency microbenchmark:
//! the multi-tenant keyed store under a deterministic seeded arrival
//! schedule, recording p50/p99/p999 submit→enable and submit→complete
//! latency per (scheduler × tenants × rate × mix) cell with continuous
//! tenant retirement through the epoch reclaimer; quick mode keeps the
//! 4-tenant read-heavy cell on both schedulers (the scheduled-CI latency
//! bar's input) plus one saturation cell per admission policy per
//! scheduler; full mode adds the rate-scaled sweep and the full-size
//! saturation cells; `--service-json` writes the rows as
//! `BENCH_service.json` (also a CI smoke-job artifact).
//!
//! `--fig backlog` runs only the naive-scheduler backlog microbenchmark:
//! per-`task_done` wakeup cost at 4k/16k/64k queue depths, the indexed
//! discipline vs the dissertation's full rescan (full scan stops at 16k —
//! deeper is the quadratic grind the index removes); `--backlog-json`
//! writes the rows as `BENCH_backlog.json`, the input of the scheduled-CI
//! scaling bar (indexed 64k per_done_ns ≤ 8x its 4k value).

use twe_bench::{
    print_backlog_rows, print_conflict_rows, print_intern_rows, print_reclaim_rows, print_rows,
    print_service_rows, print_submit_rows, run_backlog_bench, run_conflict_bench, run_figures,
    run_intern_bench, run_reclaim_bench, run_service_bench, run_submit_bench,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut conflict_json_path: Option<String> = None;
    let mut submit_json_path: Option<String> = None;
    let mut intern_json_path: Option<String> = None;
    let mut reclaim_json_path: Option<String> = None;
    let mut service_json_path: Option<String> = None;
    let mut backlog_json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                which = args.get(i + 1).cloned().unwrap_or_else(|| "all".into());
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--json" => {
                json_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--conflict-json" => {
                conflict_json_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--submit-json" => {
                submit_json_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--intern-json" => {
                intern_json_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--reclaim-json" => {
                reclaim_json_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--service-json" => {
                service_json_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--backlog-json" => {
                backlog_json_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--fig 6.1|6.2|6.3|6.4|7.1|conflict|submit|intern|reclaim|service|backlog|all] \
                     [--quick] [--json out.json] [--conflict-json BENCH_conflict.json] \
                     [--submit-json BENCH_submit.json] [--intern-json BENCH_intern.json] \
                     [--reclaim-json BENCH_reclaim.json] [--service-json BENCH_service.json] \
                     [--backlog-json BENCH_backlog.json]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    // The microbenches are opt-in (`--fig conflict|submit` / their `--*-json`
    // flags) rather than part of `all`, so figure sweeps and the microbenches
    // are never silently paid for twice in one invocation.
    let run_conflict = which == "conflict" || conflict_json_path.is_some();
    let run_submit = which == "submit" || submit_json_path.is_some();
    let run_intern = which == "intern" || intern_json_path.is_some();
    let run_reclaim = which == "reclaim" || reclaim_json_path.is_some();
    let run_service = which == "service" || service_json_path.is_some();
    let run_backlog = which == "backlog" || backlog_json_path.is_some();
    let micro_only = which == "conflict"
        || which == "submit"
        || which == "intern"
        || which == "reclaim"
        || which == "service"
        || which == "backlog";
    if micro_only {
        if json_path.is_some() {
            eprintln!(
                "# note: --json applies to figure rows and is ignored with --fig {which}; \
                 use --conflict-json / --submit-json / --intern-json / --reclaim-json / \
                 --service-json / --backlog-json for the microbench records"
            );
        }
    } else {
        eprintln!(
            "# regenerating figure(s) {which} ({} workloads), host parallelism = {}",
            if quick { "quick" } else { "full-size" },
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        );
        let rows = run_figures(&which, quick);
        print_rows(&rows);
        if let Some(path) = json_path {
            let json = serde_json::to_string_pretty(&rows).expect("serialize rows");
            std::fs::write(&path, json).expect("write JSON output");
            eprintln!("# wrote {path}");
        }
    }
    if run_conflict {
        eprintln!(
            "# conflict-test microbench ({} mode)",
            if quick { "quick" } else { "full" }
        );
        let rows = run_conflict_bench(quick);
        print_conflict_rows(&rows);
        if let Some(path) = conflict_json_path {
            let json = serde_json::to_string_pretty(&rows).expect("serialize conflict rows");
            std::fs::write(&path, json).expect("write conflict JSON output");
            eprintln!("# wrote {path}");
        }
    }
    if run_submit {
        eprintln!(
            "# batched-admission microbench ({} mode)",
            if quick { "quick" } else { "full" }
        );
        let rows = run_submit_bench(quick);
        print_submit_rows(&rows);
        if let Some(path) = submit_json_path {
            let json = serde_json::to_string_pretty(&rows).expect("serialize submit rows");
            std::fs::write(&path, json).expect("write submit JSON output");
            eprintln!("# wrote {path}");
        }
    }
    if run_intern {
        eprintln!(
            "# first-intern scaling microbench ({} mode, host parallelism = {})",
            if quick { "quick" } else { "full" },
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        );
        let rows = run_intern_bench(quick);
        print_intern_rows(&rows);
        if let Some(path) = intern_json_path {
            let json = serde_json::to_string_pretty(&rows).expect("serialize intern rows");
            std::fs::write(&path, json).expect("write intern JSON output");
            eprintln!("# wrote {path}");
        }
    }
    if run_reclaim {
        eprintln!(
            "# dynamic-region churn microbench ({} mode, host parallelism = {})",
            if quick { "quick" } else { "full" },
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        );
        let rows = run_reclaim_bench(quick);
        print_reclaim_rows(&rows);
        if let Some(path) = reclaim_json_path {
            let json = serde_json::to_string_pretty(&rows).expect("serialize reclaim rows");
            std::fs::write(&path, json).expect("write reclaim JSON output");
            eprintln!("# wrote {path}");
        }
    }
    if run_service {
        eprintln!(
            "# open-loop service-latency microbench ({} mode, host parallelism = {})",
            if quick { "quick" } else { "full" },
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        );
        let rows = run_service_bench(quick);
        print_service_rows(&rows);
        if let Some(path) = service_json_path {
            let json = serde_json::to_string_pretty(&rows).expect("serialize service rows");
            std::fs::write(&path, json).expect("write service JSON output");
            eprintln!("# wrote {path}");
        }
    }
    if run_backlog {
        eprintln!(
            "# naive-scheduler backlog microbench ({} mode, host parallelism = {})",
            if quick { "quick" } else { "full" },
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        );
        let rows = run_backlog_bench(quick);
        print_backlog_rows(&rows);
        if let Some(path) = backlog_json_path {
            let json = serde_json::to_string_pretty(&rows).expect("serialize backlog rows");
            std::fs::write(&path, json).expect("write backlog JSON output");
            eprintln!("# wrote {path}");
        }
    }
}
