//! # twe-bench
//!
//! The benchmark harness that regenerates every figure of the Tasks With
//! Effects evaluation (chapter 6 and §7.6 of the paper). Each `fig_*`
//! function runs the corresponding benchmarks across a thread sweep and
//! returns a table of [`Row`]s; the `figures` binary prints them (and can
//! dump JSON/CSV).
//!
//! Absolute numbers will differ from the paper (different language, machine
//! and core count); the reproduction target is the *shape*: which variant
//! wins, how each scales with threads, where the naive single-queue
//! scheduler collapses under fine-grain tasks, and how contention (e.g. the
//! K sweep of Figure 6.3) changes the picture.

#![warn(missing_docs)]

pub mod backlog;
pub mod intern;
pub mod reclaim;
pub mod service;

pub use backlog::{
    print_backlog_rows, run_backlog_bench, BacklogRow, BACKLOG_DEPTHS_FULL_SCAN,
    BACKLOG_DEPTHS_INDEXED,
};
pub use intern::{print_intern_rows, run_intern_bench, InternRow, INTERN_THREADS};
pub use reclaim::{print_reclaim_rows, run_reclaim_bench, ReclaimRow, RECLAIM_THREADS};
pub use service::{
    print_service_rows, run_service_bench, ServiceRow, SERVICE_RATES, SERVICE_TENANTS,
};

use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use twe_apps::{barneshut, coloring, fourwins, imageedit, kmeans, montecarlo, refine, ssca2, tsp};
use twe_effects::rpl::oracle;
use twe_effects::{Effect, EffectSet, Rpl, RplElement};
use twe_pool::ThreadPool;
use twe_runtime::naive::NaiveScheduler;
use twe_runtime::scheduler::Scheduler;
use twe_runtime::task::TaskRecord;
use twe_runtime::tree::TreeScheduler;
use twe_runtime::{Runtime, SchedulerKind};

/// One measured data point of a figure.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Which figure the point belongs to (e.g. `"6.3"`).
    pub figure: String,
    /// Benchmark name (e.g. `"k-means"`).
    pub benchmark: String,
    /// Variant (e.g. `"twe-tree"`, `"twe-single-queue"`, `"sync"`, `"seq"`).
    pub variant: String,
    /// Worker thread count used.
    pub threads: usize,
    /// Extra parameter (e.g. `"K=1000"`), empty when not applicable.
    pub param: String,
    /// Wall-clock seconds of the measured phase.
    pub seconds: f64,
    /// Speedup relative to the benchmark's sequential baseline.
    pub speedup: f64,
    /// Auxiliary counter (task retries for the dynamic-effect benchmarks).
    pub aux: u64,
}

/// Thread counts swept by the harness: powers of two up to the host's
/// available parallelism (the paper swept 1..80 on a 40-core machine).
pub fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut counts = vec![1usize];
    while *counts.last().unwrap() * 2 <= max {
        counts.push(counts.last().unwrap() * 2);
    }
    if *counts.last().unwrap() != max {
        counts.push(max);
    }
    counts
}

fn time<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

fn row(
    figure: &str,
    benchmark: &str,
    variant: &str,
    threads: usize,
    param: &str,
    seconds: f64,
    seq_seconds: f64,
) -> Row {
    Row {
        figure: figure.to_string(),
        benchmark: benchmark.to_string(),
        variant: variant.to_string(),
        threads,
        param: param.to_string(),
        seconds,
        speedup: if seconds > 0.0 {
            seq_seconds / seconds
        } else {
            0.0
        },
        aux: 0,
    }
}

/// Figure 6.1: parallel speedups of the three DPJ-ported benchmarks
/// (Barnes-Hut, Monte Carlo, K-Means) with the **naive** scheduler, compared
/// against a fork-join version with no run-time effect scheduling (the
/// stand-in for the DPJ comparator).
pub fn fig_6_1(quick: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    let threads = thread_counts();

    // Barnes-Hut.
    let bh_cfg = barneshut::BarnesHutConfig {
        n_bodies: if quick { 2_000 } else { 20_000 },
        chunks: 128,
        ..Default::default()
    };
    let bodies = barneshut::generate(&bh_cfg);
    let tree = barneshut::build_tree(&bodies);
    let (seq_s, _) = time(|| barneshut::run_sequential(&bh_cfg, &bodies, &tree));
    rows.push(row("6.1", "barnes-hut", "seq", 1, "", seq_s, seq_s));
    for &t in &threads {
        let rt = Runtime::new(t, SchedulerKind::Naive);
        let (s, _) = time(|| barneshut::run_twe(&rt, &bh_cfg, &bodies, &tree));
        rows.push(row(
            "6.1",
            "barnes-hut",
            "twe-single-queue",
            t,
            "",
            s,
            seq_s,
        ));
        let (s, _) = time(|| barneshut::run_forkjoin_baseline(t, &bh_cfg, &bodies, &tree));
        rows.push(row("6.1", "barnes-hut", "forkjoin(dpj)", t, "", s, seq_s));
    }

    // Monte Carlo.
    let mc_cfg = montecarlo::MonteCarloConfig {
        n_paths: if quick { 4_000 } else { 60_000 },
        n_steps: if quick { 60 } else { 200 },
        ..Default::default()
    };
    let (seq_s, _) = time(|| montecarlo::run_sequential(&mc_cfg));
    rows.push(row("6.1", "monte-carlo", "seq", 1, "", seq_s, seq_s));
    for &t in &threads {
        let rt = Runtime::new(t, SchedulerKind::Naive);
        let (s, _) = time(|| montecarlo::run_twe(&rt, &mc_cfg));
        rows.push(row(
            "6.1",
            "monte-carlo",
            "twe-single-queue",
            t,
            "",
            s,
            seq_s,
        ));
        let (s, _) = time(|| montecarlo::run_forkjoin_baseline(t, &mc_cfg));
        rows.push(row("6.1", "monte-carlo", "forkjoin(dpj)", t, "", s, seq_s));
    }

    // K-Means (K = 25000-equivalent, scaled).
    let km_cfg = kmeans::KMeansConfig {
        n_points: if quick { 2_000 } else { 50_000 },
        n_clusters: if quick { 512 } else { 25_000 },
        points_per_task: if quick { 4 } else { 1 },
        ..Default::default()
    };
    let input = kmeans::generate(&km_cfg);
    let (seq_s, _) = time(|| kmeans::run_sequential(&input));
    rows.push(row("6.1", "k-means", "seq", 1, "", seq_s, seq_s));
    for &t in &threads {
        let rt = Runtime::new(t, SchedulerKind::Naive);
        let (s, _) = time(|| kmeans::run_twe(&rt, &input));
        rows.push(row("6.1", "k-means", "twe-single-queue", t, "", s, seq_s));
        let (s, _) = time(|| kmeans::run_forkjoin_baseline(t, &input));
        rows.push(row("6.1", "k-means", "forkjoin(dpj)", t, "", s, seq_s));
    }
    rows
}

/// Figure 6.2: speedups of the two interactive applications' measured
/// computations (FourWins AI, ImageEdit edge detection and sharpening) with
/// the naive scheduler.
pub fn fig_6_2(quick: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    let threads = thread_counts();

    // FourWins AI.
    let fw_cfg = fourwins::FourWinsConfig {
        depth: if quick { 7 } else { 9 },
        parallel_depth: 2,
        ..Default::default()
    };
    let (seq_s, _) = time(|| fourwins::run_sequential(&fw_cfg));
    rows.push(row("6.2", "fourwins-ai", "seq", 1, "", seq_s, seq_s));
    for &t in &threads {
        let rt = Runtime::new(t, SchedulerKind::Naive);
        let (s, _) = time(|| fourwins::run_twe(&rt, &fw_cfg));
        rows.push(row(
            "6.2",
            "fourwins-ai",
            "twe-single-queue",
            t,
            "",
            s,
            seq_s,
        ));
    }

    // ImageEdit filters.
    for (name, filter) in [
        ("imageedit-edge-detect", imageedit::Filter::EdgeDetect),
        ("imageedit-sharpen", imageedit::Filter::Sharpen),
    ] {
        let cfg = imageedit::ImageEditConfig {
            width: if quick { 512 } else { 2048 },
            height: if quick { 512 } else { 2048 },
            blocks: 64,
            filter,
            seed: 11,
        };
        let img = imageedit::Image::synthetic(cfg.width, cfg.height, cfg.seed);
        let (seq_s, _) = time(|| imageedit::run_sequential(&cfg, &img));
        rows.push(row("6.2", name, "seq", 1, "", seq_s, seq_s));
        for &t in &threads {
            let rt = Runtime::new(t, SchedulerKind::Naive);
            let (s, _) = time(|| imageedit::run_twe(&rt, &cfg, &img));
            rows.push(row("6.2", name, "twe-single-queue", t, "", s, seq_s));
        }
    }
    rows
}

/// Figure 6.3: K-Means running time for K = 25000, 5000, 1000 with the tree
/// scheduler, the single-queue scheduler, and the `synchronized`-style
/// baseline.
pub fn fig_6_3(quick: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    let threads = thread_counts();
    let n_points = if quick { 4_000 } else { 50_000 };
    let cluster_counts: Vec<usize> = if quick {
        vec![2_000, 400, 80]
    } else {
        vec![25_000, 5_000, 1_000]
    };
    for k in cluster_counts {
        let cfg = kmeans::KMeansConfig {
            n_points,
            n_clusters: k,
            points_per_task: if quick { 4 } else { 1 },
            ..Default::default()
        };
        let input = kmeans::generate(&cfg);
        let param = format!("K={k}");
        let (seq_s, _) = time(|| kmeans::run_sequential(&input));
        rows.push(row("6.3", "k-means", "seq", 1, &param, seq_s, seq_s));
        for &t in &threads {
            for (variant, kind) in [
                ("twe-single-queue", SchedulerKind::Naive),
                ("twe-tree", SchedulerKind::Tree),
            ] {
                let rt = Runtime::new(t, kind);
                let (s, _) = time(|| kmeans::run_twe(&rt, &input));
                rows.push(row("6.3", "k-means", variant, t, &param, s, seq_s));
            }
            let (s, _) = time(|| kmeans::run_sync_baseline(t, &input));
            rows.push(row("6.3", "k-means", "sync", t, &param, s, seq_s));
        }
    }
    rows
}

/// Figure 6.4: SSCA2 (tree vs single-queue vs sync), TSP (tree vs
/// single-queue vs fork-join), and Barnes-Hut / Monte Carlo / FourWins with
/// the tree vs the single-queue scheduler.
pub fn fig_6_4(quick: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    let threads = thread_counts();

    // SSCA2.
    let ssca_cfg = ssca2::Ssca2Config {
        n_nodes: if quick { 2_000 } else { 20_000 },
        n_edges: if quick { 20_000 } else { 400_000 },
        edges_per_task: 4,
        ..Default::default()
    };
    let edges = ssca2::generate(&ssca_cfg);
    let (seq_s, _) = time(|| ssca2::run_sequential(&ssca_cfg, &edges));
    rows.push(row("6.4", "ssca2", "seq", 1, "", seq_s, seq_s));
    for &t in &threads {
        for (variant, kind) in [
            ("twe-single-queue", SchedulerKind::Naive),
            ("twe-tree", SchedulerKind::Tree),
        ] {
            let rt = Runtime::new(t, kind);
            let (s, _) = time(|| ssca2::run_twe(&rt, &ssca_cfg, &edges));
            rows.push(row("6.4", "ssca2", variant, t, "", s, seq_s));
        }
        let (s, _) = time(|| ssca2::run_sync_baseline(t, &ssca_cfg, &edges));
        rows.push(row("6.4", "ssca2", "sync", t, "", s, seq_s));
    }

    // TSP.
    let tsp_cfg = tsp::TspConfig {
        n_cities: if quick { 11 } else { 13 },
        cutoff: if quick { 3 } else { 4 },
        ..Default::default()
    };
    let dist = tsp::generate(&tsp_cfg);
    let (seq_s, _) = time(|| tsp::run_sequential(&dist));
    rows.push(row("6.4", "tsp", "seq", 1, "", seq_s, seq_s));
    for &t in &threads {
        for (variant, kind) in [
            ("twe-single-queue", SchedulerKind::Naive),
            ("twe-tree", SchedulerKind::Tree),
        ] {
            let rt = Runtime::new(t, kind);
            let (s, _) = time(|| tsp::run_twe(&rt, &tsp_cfg, &dist));
            rows.push(row("6.4", "tsp", variant, t, "", s, seq_s));
        }
        let (s, _) = time(|| tsp::run_forkjoin_baseline(t, &dist));
        rows.push(row("6.4", "tsp", "forkjoin", t, "", s, seq_s));
    }

    // Barnes-Hut, Monte Carlo, FourWins: tree vs single-queue.
    let bh_cfg = barneshut::BarnesHutConfig {
        n_bodies: if quick { 2_000 } else { 20_000 },
        chunks: 128,
        ..Default::default()
    };
    let bodies = barneshut::generate(&bh_cfg);
    let qtree = barneshut::build_tree(&bodies);
    let (bh_seq, _) = time(|| barneshut::run_sequential(&bh_cfg, &bodies, &qtree));
    rows.push(row("6.4", "barnes-hut", "seq", 1, "", bh_seq, bh_seq));

    let mc_cfg = montecarlo::MonteCarloConfig {
        n_paths: if quick { 4_000 } else { 60_000 },
        n_steps: if quick { 60 } else { 200 },
        ..Default::default()
    };
    let (mc_seq, _) = time(|| montecarlo::run_sequential(&mc_cfg));
    rows.push(row("6.4", "monte-carlo", "seq", 1, "", mc_seq, mc_seq));

    let fw_cfg = fourwins::FourWinsConfig {
        depth: if quick { 7 } else { 9 },
        parallel_depth: 2,
        ..Default::default()
    };
    let (fw_seq, _) = time(|| fourwins::run_sequential(&fw_cfg));
    rows.push(row("6.4", "fourwins-ai", "seq", 1, "", fw_seq, fw_seq));

    for &t in &threads {
        for (variant, kind) in [
            ("twe-single-queue", SchedulerKind::Naive),
            ("twe-tree", SchedulerKind::Tree),
        ] {
            let rt = Runtime::new(t, kind);
            let (s, _) = time(|| barneshut::run_twe(&rt, &bh_cfg, &bodies, &qtree));
            rows.push(row("6.4", "barnes-hut", variant, t, "", s, bh_seq));
            let rt = Runtime::new(t, kind);
            let (s, _) = time(|| montecarlo::run_twe(&rt, &mc_cfg));
            rows.push(row("6.4", "monte-carlo", variant, t, "", s, mc_seq));
            let rt = Runtime::new(t, kind);
            let (s, _) = time(|| fourwins::run_twe(&rt, &fw_cfg));
            rows.push(row("6.4", "fourwins-ai", variant, t, "", s, fw_seq));
        }
    }
    rows
}

/// §7.6 (reported here as "figure 7.1"): self-relative speedups and overheads
/// of the dynamic-effect benchmarks (Delaunay-style refinement and graph
/// colouring), plus the number of aborted attempts.
pub fn fig_7_1(quick: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    let threads = thread_counts();

    // Refinement.
    let refine_cfg = refine::RefineConfig {
        n_triangles: if quick { 5_000 } else { 100_000 },
        bad_fraction: 0.2,
        max_cavity: 6,
        ..Default::default()
    };
    let mesh = refine::generate(&refine_cfg);
    let (seq_s, _) = time(|| refine::run_sequential(&refine_cfg, &mesh));
    rows.push(row("7.1", "refine", "seq", 1, "", seq_s, seq_s));
    for &t in &threads {
        let mesh = refine::generate(&refine_cfg);
        let rt = Runtime::new(t, SchedulerKind::Tree);
        let (s, _) = time(|| refine::run_twe(&rt, &refine_cfg, &mesh));
        let mut r = row("7.1", "refine", "twe-dynamic", t, "", s, seq_s);
        r.aux = rt.stats().task_retries;
        rows.push(r);
        let mesh = refine::generate(&refine_cfg);
        let (s, _) = time(|| refine::run_coarse_baseline(t, &refine_cfg, &mesh));
        rows.push(row("7.1", "refine", "coarse-lock", t, "", s, seq_s));
    }

    // Colouring.
    let color_cfg = coloring::ColoringConfig {
        n_nodes: if quick { 5_000 } else { 100_000 },
        avg_degree: 8,
        ..Default::default()
    };
    let graph = coloring::generate(&color_cfg);
    let (seq_s, _) = time(|| coloring::run_sequential(&graph));
    rows.push(row("7.1", "coloring", "seq", 1, "", seq_s, seq_s));
    for &t in &threads {
        let graph = coloring::generate(&color_cfg);
        let rt = Runtime::new(t, SchedulerKind::Tree);
        let (s, _) = time(|| coloring::run_twe(&rt, &graph));
        let mut r = row("7.1", "coloring", "twe-dynamic", t, "", s, seq_s);
        r.aux = rt.stats().task_retries;
        rows.push(r);
        let graph = coloring::generate(&color_cfg);
        let (s, _) = time(|| coloring::run_lock_baseline(t, &graph));
        rows.push(row("7.1", "coloring", "per-node-lock", t, "", s, seq_s));
    }
    rows
}

/// One row of the RPL conflict-test microbenchmark (`BENCH_conflict.json`):
/// throughput of the interned id-based disjointness test against the
/// baseline it replaced, on same-shaped workloads.
#[derive(Clone, Debug, Serialize)]
pub struct ConflictRow {
    /// Workload shape:
    ///
    /// * `"concrete"` — fully-specified RPLs (the pure id-compare path);
    /// * `"wild-mix"` — every fourth RPL a wildcard cycling trailing-star /
    ///   trailing-`[?]` / mid-star (ancestor test, `[?]` shape test, memo
    ///   cache);
    /// * `"anyindex"` — `P:[?]` against concrete index children (the
    ///   dedicated O(1) shape fast path);
    /// * `"set-disjoint"` — pairwise-disjoint `EffectSet`s (`depth` is the
    ///   per-set effect count): summary-filtered
    ///   `EffectSet::non_interfering` vs the plain all-pairs loop, both over
    ///   interned ids.
    pub shape: String,
    /// RPL depth of the workload (for `set-disjoint`: effects per set).
    pub depth: usize,
    /// Whether the workload contains wildcard RPLs.
    pub wildcard: bool,
    /// Conflict tests per second with the interned-id (for sets:
    /// summary-filtered) implementation.
    pub id_ops_per_sec: f64,
    /// Conflict tests per second with the baseline: the element-wise oracle
    /// for RPL rows, the all-pairs effect loop for set rows.
    pub elementwise_ops_per_sec: f64,
    /// `id_ops_per_sec / elementwise_ops_per_sec`.
    pub speedup: f64,
}

/// Builds the `n`-path conflict workload at the given depth. Concrete paths
/// share a long common prefix and end in a distinct index (the worst case
/// for the element-wise scan, and the shape fine-grained workloads produce).
/// With `wildcard`, every fourth path is a wildcard RPL cycling through the
/// three shapes the id-based implementation handles differently: a
/// trailing star at a varying truncation depth (the O(1) ancestor-test fast
/// path), a trailing `[?]`, and a mid-path star (both resolved through the
/// memoized relation cache).
///
/// Shared by the `figures --fig conflict` throughput record and the
/// `conflict` criterion bench so the two always measure the same shapes.
pub fn conflict_paths(depth: usize, n: usize, wildcard: bool) -> Vec<Vec<RplElement>> {
    (0..n)
        .map(|i| {
            let mut path: Vec<RplElement> = Vec::with_capacity(depth);
            path.push(RplElement::name("Conflict"));
            if wildcard && i % 4 == 0 && depth > 1 {
                match (i / 4) % 3 {
                    1 if depth > 2 => {
                        // Trailing any-index: memo-cache path.
                        for level in 1..depth - 1 {
                            path.push(RplElement::name(&format!("L{level}")));
                        }
                        path.push(RplElement::AnyIndex);
                    }
                    2 if depth > 2 => {
                        // Mid-path star with a distinct tail: memo-cache
                        // path. Exactly `depth` elements like every other
                        // shape, so the row's depth label stays truthful.
                        for level in 1..depth - 2 {
                            path.push(RplElement::name(&format!("L{level}")));
                        }
                        path.push(RplElement::Star);
                        path.push(RplElement::Index((i / 4) as i64));
                    }
                    _ => {
                        // Trailing star, prefix truncated at a varying depth.
                        let cut = 1 + (i / 12) % (depth - 1);
                        for level in 1..cut {
                            path.push(RplElement::name(&format!("L{level}")));
                        }
                        path.push(RplElement::Star);
                    }
                }
            } else {
                for level in 1..depth.saturating_sub(1) {
                    path.push(RplElement::name(&format!("L{level}")));
                }
                if depth > 1 {
                    path.push(RplElement::Index(i as i64));
                }
            }
            path
        })
        .collect()
}

/// Builds the `n`-path `P:[?]` workload at the given depth (≥ 2): every
/// other path is the trailing-any-index wildcard `P:[?]` over a shared
/// concrete prefix, the rest are concrete index children `P:[i]` — the
/// index-partitioned shape (`Data:[i]` workers vs a `Data:[?]` sweeper)
/// whose conflict test now resolves through the dedicated O(1) parent-id +
/// last-element-kind check instead of the memo cache.
pub fn anyindex_paths(depth: usize, n: usize) -> Vec<Vec<RplElement>> {
    assert!(depth >= 2, "the P:[?] shape needs a parent and a tail");
    (0..n)
        .map(|i| {
            let mut path: Vec<RplElement> = Vec::with_capacity(depth);
            path.push(RplElement::name("AnyIdx"));
            for level in 1..depth - 1 {
                path.push(RplElement::name(&format!("L{level}")));
            }
            if i % 2 == 0 {
                path.push(RplElement::AnyIndex);
            } else {
                path.push(RplElement::Index(i as i64));
            }
            path
        })
        .collect()
}

/// Builds `n` pairwise anchor-disjoint effect sets of `set_size` effects
/// each: set `k`'s effects live under the top-level region `SetK`, so any
/// two sets are disjoint and the per-set summary rejects the pair in O(set)
/// where the all-pairs loop scans `set_size²` id pairs.
pub fn disjoint_effect_sets(n: usize, set_size: usize) -> Vec<EffectSet> {
    (0..n)
        .map(|k| {
            EffectSet::from_effects((0..set_size).map(|j| {
                let rpl = Rpl::new(vec![
                    RplElement::name(&format!("Set{k}")),
                    RplElement::Index(j as i64),
                ]);
                if j % 3 == 0 {
                    Effect::read(rpl)
                } else {
                    Effect::write(rpl)
                }
            }))
        })
        .collect()
}

/// The plain all-pairs set non-interference loop (what `EffectSet` did
/// before the per-set summaries): the baseline for the `set-disjoint` rows.
fn pairwise_non_interfering(a: &EffectSet, b: &EffectSet) -> bool {
    a.iter().all(|x| b.iter().all(|y| x.non_interfering(y)))
}

/// Runs 64×64 all-pairs sweeps of `test` until at least `min_seconds` of
/// wall clock have elapsed (with `batch` sweeps between clock reads), then
/// returns ops/second. The minimum window keeps the measurement robust to
/// scheduler noise on shared CI runners.
fn all_pairs_throughput(
    min_seconds: f64,
    batch: usize,
    mut test: impl FnMut(usize, usize) -> bool,
) -> f64 {
    let mut sweeps = 0u64;
    let mut sink = 0u64;
    let start = Instant::now();
    loop {
        for _ in 0..batch {
            for i in 0..64 {
                for j in 0..64 {
                    sink += u64::from(test(i, j));
                }
            }
        }
        sweeps += batch as u64;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_seconds {
            std::hint::black_box(sink);
            return (sweeps * 64 * 64) as f64 / elapsed.max(1e-12);
        }
    }
}

/// Measures an RPL workload: cross-checks the id-based disjointness against
/// the element-wise oracle (also warming the interner/caches), then records
/// steady-state throughput of both.
fn conflict_row(
    shape: &str,
    depth: usize,
    wildcard: bool,
    paths: &[Vec<RplElement>],
    min_seconds: f64,
) -> ConflictRow {
    let rpls: Vec<Rpl> = paths.iter().map(|p| Rpl::new(p.clone())).collect();
    for (i, a) in paths.iter().enumerate() {
        for (j, b) in paths.iter().enumerate() {
            assert_eq!(
                rpls[i].disjoint(&rpls[j]),
                !oracle::overlaps(a, b),
                "id-based and element-wise disagree on {a:?} vs {b:?}"
            );
        }
    }
    let id_tp = all_pairs_throughput(min_seconds, 20, |i, j| rpls[i].disjoint(&rpls[j]));
    let el_tp = all_pairs_throughput(min_seconds, 20, |i, j| {
        !oracle::overlaps(&paths[i], &paths[j])
    });
    ConflictRow {
        shape: shape.to_string(),
        depth,
        wildcard,
        id_ops_per_sec: id_tp,
        elementwise_ops_per_sec: el_tp,
        speedup: id_tp / el_tp.max(1e-12),
    }
}

/// Measures conflict-test throughput on the workload shapes of the conflict
/// plane: the interned id-based implementation versus the element-wise
/// oracle it replaced (one row per depth × concrete/wildcard-mix, plus the
/// dedicated `P:[?]` shape rows), and summary-filtered set-level
/// non-interference versus the plain all-pairs loop (`set-disjoint` rows).
pub fn run_conflict_bench(quick: bool) -> Vec<ConflictRow> {
    let min_seconds = if quick { 0.12 } else { 0.6 };
    let mut rows = Vec::new();
    for depth in [2usize, 4, 6, 8] {
        for wildcard in [false, true] {
            let shape = if wildcard { "wild-mix" } else { "concrete" };
            let paths = conflict_paths(depth, 64, wildcard);
            rows.push(conflict_row(shape, depth, wildcard, &paths, min_seconds));
        }
    }
    // The `P:[?]` shape: wildcard rows that resolve entirely through the
    // O(1) parent-id check (no memo-cache traffic).
    for depth in [2usize, 4, 8] {
        let paths = anyindex_paths(depth, 64);
        rows.push(conflict_row("anyindex", depth, true, &paths, min_seconds));
    }
    // Set-level rows: summary rejection vs the all-pairs loop on disjoint
    // sets (both over interned ids; the summary's job is skipping pairs).
    for set_size in [4usize, 8] {
        let sets = disjoint_effect_sets(64, set_size);
        for (i, a) in sets.iter().enumerate() {
            for (j, b) in sets.iter().enumerate() {
                assert_eq!(
                    a.non_interfering(b),
                    pairwise_non_interfering(a, b),
                    "summary-filtered set test disagrees with all-pairs loop"
                );
                assert_eq!(
                    a.non_interfering(b),
                    i != j,
                    "distinct sets must be disjoint; a set self-interferes"
                );
            }
        }
        let id_tp = all_pairs_throughput(min_seconds, 20, |i, j| sets[i].non_interfering(&sets[j]));
        let el_tp = all_pairs_throughput(min_seconds, 20, |i, j| {
            pairwise_non_interfering(&sets[i], &sets[j])
        });
        rows.push(ConflictRow {
            shape: "set-disjoint".to_string(),
            depth: set_size,
            wildcard: false,
            id_ops_per_sec: id_tp,
            elementwise_ops_per_sec: el_tp,
            speedup: id_tp / el_tp.max(1e-12),
        });
    }
    rows
}

/// One row of the batched-admission microbenchmark (`BENCH_submit.json`):
/// scheduler admission throughput (tasks/second through `submit` /
/// `submit_batch`, execution excluded) for a disjoint fan-out wave, per-task
/// versus batched.
#[derive(Clone, Debug, Serialize)]
pub struct SubmitRow {
    /// Scheduler under test (`"tree"` / `"naive"`).
    pub scheduler: String,
    /// Tasks per admission wave (the fan-out width).
    pub fanout: usize,
    /// RPL depth of the wave's effects (`depth − 1` shared prefix elements
    /// plus a distinct trailing index). Per-task admission pays one lock +
    /// check per prefix level per task; the batch pays them once per wave,
    /// so the batched advantage grows with nesting depth.
    pub depth: usize,
    /// Admissions per second when each task is submitted individually
    /// (`Scheduler::submit`, one descent + one recheck round per task).
    pub per_task_ops_per_sec: f64,
    /// Admissions per second when the wave is submitted as one batch
    /// (`Scheduler::submit_batch`, one descent + one recheck round total).
    pub batched_ops_per_sec: f64,
    /// `batched_ops_per_sec / per_task_ops_per_sec`.
    pub speedup: f64,
    /// Admission-pool workers for the sharded parallel-admission rows:
    /// `0` for the classic per-task-vs-batched rows (no pool attached),
    /// `1` for the sharded shape on the genuine inline path (no pool), and
    /// `≥ 2` for the sharded shape with the wave's first-level groups
    /// dispatched to an admission pool of that many workers.
    pub admit_threads: usize,
    /// Batched throughput of this row over the batched throughput of the
    /// same sharded shape on the inline path (the `admit_threads == 1`
    /// row); `1.0` on the classic rows. Only meaningful on hosts with
    /// enough CPUs — the CI bar applies at `host_cpus >= 4` on scheduled
    /// runs.
    pub sharded_vs_inline: f64,
    /// Concurrent submitting threads for the tenant-disjoint root-plane
    /// rows: `0` for every single-submitter row (classic and
    /// parallel-admission), `≥ 1` for the multi-threaded sweep where that
    /// many threads `submit` tenant-disjoint waves concurrently. On these
    /// rows the two throughput columns are repurposed:
    /// `per_task_ops_per_sec` is the **single-root baseline**
    /// ([`twe_runtime::tree::TreeScheduler::new_single_root`], every
    /// admission through one root lock) and `batched_ops_per_sec` is the
    /// **sharded root plane** under the same load.
    pub submit_threads: usize,
    /// Sharded-root throughput over single-root throughput at this row's
    /// `submit_threads` (equals `speedup` there); `1.0` on every
    /// single-submitter row. The CI bar (`≥ 1.5` at 4 submitting threads)
    /// applies on scheduled runs with `host_cpus >= 4`.
    pub root_sharded_vs_single: f64,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_cpus: usize,
}

/// The fan-out widths the submit bench sweeps (the K-Means assign / image
/// block shapes: a wave of disjoint index-region tasks).
pub const SUBMIT_FANOUTS: [usize; 3] = [64, 512, 4096];

/// The RPL depths the submit bench sweeps: a flat partition (`Data:[i]`,
/// depth 2) and two nested hierarchies sharing 3 / 5 prefix elements.
pub const SUBMIT_DEPTHS: [usize; 3] = [2, 4, 6];

/// Admission-pool worker counts the sharded parallel-admission rows sweep
/// (full mode; `1` is the inline baseline every `sharded_vs_inline` ratio
/// divides by).
pub const ADMIT_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Top-level anchors of the sharded admit waves: the root stage forks each
/// wave into this many disjoint first-level groups, the unit the tree
/// scheduler dispatches to the admission pool.
pub const ADMIT_SHARDS: usize = 8;

/// Concurrent submitting-thread counts the tenant-disjoint root-plane rows
/// sweep (sharded root plane vs the single-root baseline).
pub const SUBMIT_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Per-wave width of each submitting thread in the tenant-disjoint sweep.
pub const TENANT_FANOUT: usize = 256;

/// RPL depth of the tenant-disjoint sweep's effects
/// (`N{t}:F2:[i]` — tenant anchor, one shared level, trailing index).
pub const TENANT_DEPTH: usize = 3;

/// The disjoint effect `F1:…:F{depth−1}:[i]` used by the submit waves: a
/// shared `depth − 1`-element prefix with a distinct trailing index, the
/// shape where per-task admission re-locks and re-checks every interior
/// prefix node once per task.
fn submit_effect(depth: usize, i: usize) -> EffectSet {
    let mut path: Vec<String> = (1..depth).map(|level| format!("F{level}")).collect();
    path.push(format!("[{i}]"));
    EffectSet::parse(&format!("writes {}", path.join(":")))
}

/// The disjoint effect `P{i % shards}:F2:…:F{depth−1}:[i / shards]` used by
/// the parallel-admission waves: `shards` distinct top-level anchors so the
/// wave's settle-at-root pass forks it into `shards` first-level groups —
/// the sub-trees the tree scheduler can descend on admission-pool workers —
/// with a distinct trailing index per task under each anchor so the wave
/// stays pairwise disjoint.
fn sharded_submit_effect(depth: usize, shards: usize, i: usize) -> EffectSet {
    let mut path: Vec<String> = vec![format!("P{}", i % shards)];
    path.extend((2..depth).map(|level| format!("F{level}")));
    path.push(format!("[{}]", i / shards));
    EffectSet::parse(&format!("writes {}", path.join(":")))
}

/// Builds one admission wave of pairwise-disjoint tasks.
fn submit_wave(effects: &[EffectSet], first_id: u64) -> Vec<Arc<TaskRecord>> {
    effects
        .iter()
        .enumerate()
        .map(|(i, e)| TaskRecord::new(first_id + i as u64, "submit-bench", e.clone(), false))
        .collect()
}

/// Measures admission throughput (tasks/second) of one scheduler for
/// `fanout`-wide waves. Only the `submit`/`submit_batch` calls are timed;
/// task-record construction and the drain (`task_done`) between waves are
/// not. Runs until `min_seconds` of *timed* work have accumulated.
///
/// `enabled` is the scheduler's enable-callback counter; the waves are
/// pairwise disjoint, so *this* run must enable exactly what it admitted
/// (warm-up included) — asserted per run, so a batch path that silently
/// enabled nothing cannot publish a throughput number.
fn submit_throughput(
    sched: &dyn Scheduler,
    effects: &[EffectSet],
    batched: bool,
    min_seconds: f64,
    enabled: &std::sync::atomic::AtomicU64,
) -> f64 {
    let fanout = effects.len();
    let enabled_at_start = enabled.load(std::sync::atomic::Ordering::Relaxed);
    let mut next_id = 1u64;
    let mut admitted = 0u64;
    let mut elapsed = 0.0f64;
    // One untimed warm-up wave interns the RPLs and grows the tree/queue to
    // its steady shape.
    let warm = submit_wave(effects, next_id);
    next_id += fanout as u64;
    for t in &warm {
        sched.submit(t.clone());
    }
    for t in &warm {
        t.mark_done();
        sched.task_done(t);
    }
    while elapsed < min_seconds {
        let wave = submit_wave(effects, next_id);
        next_id += fanout as u64;
        let start = Instant::now();
        if batched {
            sched.submit_batch(wave.clone());
        } else {
            for t in &wave {
                sched.submit(t.clone());
            }
        }
        elapsed += start.elapsed().as_secs_f64();
        admitted += fanout as u64;
        for t in &wave {
            t.mark_done();
            sched.task_done(t);
        }
    }
    let enabled_here = enabled.load(std::sync::atomic::Ordering::Relaxed) - enabled_at_start;
    assert_eq!(
        enabled_here,
        admitted + fanout as u64,
        "disjoint waves must enable every admitted task (batched={batched})"
    );
    admitted as f64 / elapsed.max(1e-12)
}

/// Measures total `submit`/`task_done` throughput (tasks/second summed over
/// all submitting threads) of the tree scheduler under tenant-disjoint
/// traffic: `threads` submitter threads, each owning its own first-level
/// anchor (`N{t}:…`), repeatedly admit and drain [`TENANT_FANOUT`]-wide
/// pairwise-disjoint waves per-task for `min_seconds` of wall time.
/// `single_root` selects the faithful single-lock-domain baseline
/// ([`TreeScheduler::new_single_root`]) instead of the sharded root plane.
/// Unlike the single-submitter benches this times the whole admit+drain
/// loop under contention — the quantity root-plane sharding is meant to
/// scale. Every admitted task must come out enabled (the waves are
/// disjoint), asserted at the end.
fn multithread_submit_throughput(threads: usize, single_root: bool, min_seconds: f64) -> f64 {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    let enabled = Arc::new(AtomicU64::new(0));
    let sched = {
        let enabled = enabled.clone();
        let enable: Box<dyn Fn(Arc<TaskRecord>) + Send + Sync> = Box::new(move |_t| {
            enabled.fetch_add(1, Ordering::Relaxed);
        });
        Arc::new(if single_root {
            TreeScheduler::new_single_root(enable)
        } else {
            TreeScheduler::new(enable)
        })
    };
    // Per-thread tenant-disjoint effects, parsed (and interned) up front.
    let all_effects: Vec<Vec<EffectSet>> = (0..threads)
        .map(|t| {
            (0..TENANT_FANOUT)
                .map(|i| {
                    let mut path = vec![format!("N{t}")];
                    path.extend((2..TENANT_DEPTH).map(|level| format!("F{level}")));
                    path.push(format!("[{i}]"));
                    EffectSet::parse(&format!("writes {}", path.join(":")))
                })
                .collect()
        })
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(std::sync::Barrier::new(threads + 1));
    let total = Arc::new(AtomicU64::new(0));
    let mut started = None;
    std::thread::scope(|scope| {
        for (t, effects) in all_effects.iter().enumerate() {
            let sched = sched.clone();
            let stop = stop.clone();
            let barrier = barrier.clone();
            let total = total.clone();
            scope.spawn(move || {
                // Globally-unique task ids per thread (`conflicts` treats
                // equal ids as one task).
                let mut next_id = ((t as u64) << 40) | 1;
                // One untimed warm-up wave grows this tenant's subtree (and
                // publishes its route) to the steady shape.
                let warm = submit_wave(effects, next_id);
                next_id += TENANT_FANOUT as u64;
                for task in &warm {
                    sched.submit(task.clone());
                }
                for task in &warm {
                    task.mark_done();
                    sched.task_done(task);
                }
                let mut admitted = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let wave = submit_wave(effects, next_id);
                    next_id += TENANT_FANOUT as u64;
                    for task in &wave {
                        sched.submit(task.clone());
                    }
                    for task in &wave {
                        task.mark_done();
                        sched.task_done(task);
                    }
                    admitted += TENANT_FANOUT as u64;
                }
                total.fetch_add(admitted, Ordering::Relaxed);
            });
        }
        barrier.wait();
        started = Some(Instant::now());
        std::thread::sleep(std::time::Duration::from_secs_f64(min_seconds));
        stop.store(true, Ordering::Relaxed);
    });
    // Elapsed is read after every worker joined, so the final partial waves
    // are inside the measured window and the count matches the clock.
    let elapsed = started.expect("barrier passed").elapsed().as_secs_f64();
    let admitted = total.load(Ordering::Relaxed);
    assert_eq!(
        enabled.load(Ordering::Relaxed),
        admitted + (threads * TENANT_FANOUT) as u64,
        "tenant-disjoint waves must enable every admitted task \
         (single_root={single_root}, threads={threads})"
    );
    admitted as f64 / elapsed.max(1e-12)
}

/// Measures per-task vs batched admission throughput on both schedulers
/// across [`SUBMIT_FANOUTS`] (execution excluded: the enable callback is a
/// no-op and tasks are drained untimed between waves). Every admitted task
/// must come out `Enabled` — the waves are disjoint — which doubles as a
/// correctness check on the batch path.
///
/// After the classic sweep, a second sweep measures *parallel admission* on
/// the tree scheduler: one sharded wave shape ([`ADMIT_SHARDS`] top-level
/// anchors, so the root stage forks the wave into that many first-level
/// groups) submitted batched through an admission pool of
/// [`ADMIT_THREADS`] workers. The `admit_threads == 1` row takes the
/// genuine inline path (no pool attached) and is the baseline every
/// `sharded_vs_inline` ratio divides by; the pooled rows assert that at
/// least one wave really dispatched to the pool (`parallel_waves() > 0`),
/// so a gating regression cannot silently publish inline numbers as pooled
/// ones. Quick mode keeps one narrow pooled row as a correctness probe —
/// the speedup bar only applies to full runs on wide-enough hosts.
pub fn run_submit_bench(quick: bool) -> Vec<SubmitRow> {
    let min_seconds = if quick { 0.08 } else { 0.4 };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    for (label, kind) in [
        ("tree", SchedulerKind::Tree),
        ("naive", SchedulerKind::Naive),
    ] {
        for fanout in SUBMIT_FANOUTS {
            for depth in SUBMIT_DEPTHS {
                let effects: Vec<EffectSet> =
                    (0..fanout).map(|i| submit_effect(depth, i)).collect();
                let enabled = Arc::new(std::sync::atomic::AtomicU64::new(0));
                let make = |enabled: Arc<std::sync::atomic::AtomicU64>| -> Box<dyn Scheduler> {
                    let enable: Box<dyn Fn(Arc<TaskRecord>) + Send + Sync> = Box::new(move |_t| {
                        enabled.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    });
                    match kind {
                        SchedulerKind::Tree => Box::new(TreeScheduler::new(enable)),
                        SchedulerKind::Naive => Box::new(NaiveScheduler::new(enable)),
                    }
                };
                let per_sched = make(enabled.clone());
                let per_task =
                    submit_throughput(per_sched.as_ref(), &effects, false, min_seconds, &enabled);
                let batch_sched = make(enabled.clone());
                let batched =
                    submit_throughput(batch_sched.as_ref(), &effects, true, min_seconds, &enabled);
                rows.push(SubmitRow {
                    scheduler: label.to_string(),
                    fanout,
                    depth,
                    per_task_ops_per_sec: per_task,
                    batched_ops_per_sec: batched,
                    speedup: batched / per_task.max(1e-12),
                    admit_threads: 0,
                    sharded_vs_inline: 1.0,
                    submit_threads: 0,
                    root_sharded_vs_single: 1.0,
                    host_cpus,
                });
            }
        }
    }

    // Parallel-admission sweep: the sharded shape on the tree scheduler,
    // inline (1) vs pooled (≥ 2) descent of the wave's first-level groups.
    let (admit_fanout, admit_threads): (usize, &[usize]) = if quick {
        (512, &[1, 4])
    } else {
        (4096, &ADMIT_THREADS)
    };
    let admit_depth = 4;
    let effects: Vec<EffectSet> = (0..admit_fanout)
        .map(|i| sharded_submit_effect(admit_depth, ADMIT_SHARDS, i))
        .collect();
    let mut inline_batched = 0.0f64;
    for &threads in admit_threads {
        let enabled = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let make = |enabled: Arc<std::sync::atomic::AtomicU64>| -> TreeScheduler {
            let enable: Box<dyn Fn(Arc<TaskRecord>) + Send + Sync> = Box::new(move |_t| {
                enabled.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
            if threads == 1 {
                TreeScheduler::new(enable)
            } else {
                TreeScheduler::with_admission(enable, Arc::new(ThreadPool::new(threads)))
            }
        };
        let per_sched = make(enabled.clone());
        let per_task = submit_throughput(&per_sched, &effects, false, min_seconds, &enabled);
        let batch_sched = make(enabled.clone());
        let batched = submit_throughput(&batch_sched, &effects, true, min_seconds, &enabled);
        if threads > 1 {
            assert!(
                batch_sched.parallel_waves() > 0,
                "the sharded batched waves must dispatch to the admission pool \
                 ({admit_fanout} records over {ADMIT_SHARDS} groups clears the \
                 default thresholds)"
            );
        } else {
            inline_batched = batched;
        }
        rows.push(SubmitRow {
            scheduler: "tree".to_string(),
            fanout: admit_fanout,
            depth: admit_depth,
            per_task_ops_per_sec: per_task,
            batched_ops_per_sec: batched,
            speedup: batched / per_task.max(1e-12),
            admit_threads: threads,
            sharded_vs_inline: batched / inline_batched.max(1e-12),
            submit_threads: 0,
            root_sharded_vs_single: 1.0,
            host_cpus,
        });
    }

    // Root-plane sharding sweep: tenant-disjoint per-task `submit` traffic
    // from 1/2/4/8 concurrent submitting threads, sharded root plane vs
    // the faithful single-root baseline. Quick mode keeps one 4-thread row
    // as a correctness probe (both modes must still enable every task).
    let submit_threads_sweep: &[usize] = if quick { &[4] } else { &SUBMIT_THREADS };
    for &threads in submit_threads_sweep {
        let single = multithread_submit_throughput(threads, true, min_seconds);
        let sharded = multithread_submit_throughput(threads, false, min_seconds);
        rows.push(SubmitRow {
            scheduler: "tree".to_string(),
            fanout: TENANT_FANOUT,
            depth: TENANT_DEPTH,
            per_task_ops_per_sec: single,
            batched_ops_per_sec: sharded,
            speedup: sharded / single.max(1e-12),
            admit_threads: 0,
            sharded_vs_inline: 1.0,
            submit_threads: threads,
            root_sharded_vs_single: sharded / single.max(1e-12),
            host_cpus,
        });
    }
    rows
}

/// Pretty-prints the submit microbenchmark rows. The `admit` column is `-`
/// on the classic per-task-vs-batched rows and the admission-pool worker
/// count on the sharded parallel-admission rows (`1` = inline baseline);
/// `vs-inline` is each sharded row's batched throughput over the inline
/// baseline's. The `subm` column is the concurrent submitting-thread count
/// of the tenant-disjoint root-plane rows (`-` elsewhere) — on those rows
/// the two throughput columns are single-root vs sharded-root and
/// `vs-single` is their ratio.
pub fn print_submit_rows(rows: &[SubmitRow]) {
    println!(
        "{:<10} {:<8} {:<6} {:<6} {:<5} {:>18} {:>18} {:>9} {:>10} {:>10}",
        "scheduler",
        "fanout",
        "depth",
        "admit",
        "subm",
        "per-task ops/s",
        "batched ops/s",
        "speedup",
        "vs-inline",
        "vs-single"
    );
    for r in rows {
        let admit = if r.admit_threads == 0 {
            "-".to_string()
        } else {
            r.admit_threads.to_string()
        };
        let subm = if r.submit_threads == 0 {
            "-".to_string()
        } else {
            r.submit_threads.to_string()
        };
        println!(
            "{:<10} {:<8} {:<6} {:<6} {:<5} {:>18.0} {:>18.0} {:>8.2}x {:>9.2}x {:>9.2}x",
            r.scheduler,
            r.fanout,
            r.depth,
            admit,
            subm,
            r.per_task_ops_per_sec,
            r.batched_ops_per_sec,
            r.speedup,
            r.sharded_vs_inline,
            r.root_sharded_vs_single
        );
    }
}

/// Pretty-prints the conflict microbenchmark rows.
pub fn print_conflict_rows(rows: &[ConflictRow]) {
    println!(
        "{:<13} {:<6} {:<9} {:>16} {:>16} {:>9}",
        "shape", "depth", "wildcard", "id ops/s", "baseline ops/s", "speedup"
    );
    for r in rows {
        println!(
            "{:<13} {:<6} {:<9} {:>16.0} {:>16.0} {:>8.2}x",
            r.shape, r.depth, r.wildcard, r.id_ops_per_sec, r.elementwise_ops_per_sec, r.speedup
        );
    }
}

/// Runs the figures selected by `which` ("6.1", …, "7.1", or "all").
pub fn run_figures(which: &str, quick: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    let want = |f: &str| which == "all" || which == f;
    if want("6.1") {
        rows.extend(fig_6_1(quick));
    }
    if want("6.2") {
        rows.extend(fig_6_2(quick));
    }
    if want("6.3") {
        rows.extend(fig_6_3(quick));
    }
    if want("6.4") {
        rows.extend(fig_6_4(quick));
    }
    if want("7.1") {
        rows.extend(fig_7_1(quick));
    }
    rows
}

/// Pretty-prints rows as the table the paper's figures plot.
pub fn print_rows(rows: &[Row]) {
    println!(
        "{:<6} {:<22} {:<18} {:>7} {:<10} {:>10} {:>8} {:>8}",
        "figure", "benchmark", "variant", "threads", "param", "sec", "speedup", "aux"
    );
    for r in rows {
        println!(
            "{:<6} {:<22} {:<18} {:>7} {:<10} {:>10.4} {:>8.2} {:>8}",
            r.figure, r.benchmark, r.variant, r.threads, r.param, r.seconds, r.speedup, r.aux
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_start_at_one_and_are_increasing() {
        let counts = thread_counts();
        assert_eq!(counts[0], 1);
        assert!(counts.windows(2).all(|w| w[0] < w[1]) || counts.len() == 1);
    }

    #[test]
    fn row_speedup_is_relative_to_sequential() {
        let r = row("6.1", "x", "y", 2, "", 0.5, 1.0);
        assert!((r.speedup - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rows_serialize_to_json() {
        let r = row("6.3", "k-means", "twe-tree", 4, "K=1000", 0.25, 1.0);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("k-means"));
        assert!(json.contains("\"threads\":4"));
    }

    #[test]
    fn anyindex_workload_has_the_advertised_shape() {
        let paths = anyindex_paths(4, 16);
        assert_eq!(paths.len(), 16);
        for (i, p) in paths.iter().enumerate() {
            assert_eq!(p.len(), 4, "every path carries its full depth");
            let r = Rpl::new(p.clone());
            if i % 2 == 0 {
                assert!(r.is_parent_any_index(), "even paths are P:[?]");
            } else {
                assert!(r.is_fully_specified(), "odd paths are concrete");
            }
            // All tails hang off the same parent, so P:[?] overlaps every
            // concrete sibling.
            assert!(!Rpl::new(paths[0].clone()).disjoint(&r));
        }
    }

    #[test]
    fn sharded_submit_effects_are_disjoint_and_fork_by_anchor() {
        let effects: Vec<EffectSet> = (0..32).map(|i| sharded_submit_effect(4, 8, i)).collect();
        for (i, a) in effects.iter().enumerate() {
            assert_eq!(a.len(), 1);
            // Pairwise disjoint (a write self-interferes), so the admission
            // wave built from them must enable every task.
            for (j, b) in effects.iter().enumerate() {
                assert_eq!(a.non_interfering(b), i != j);
            }
            // Anchored at `P{i % 8}`: exactly 8 distinct first elements, the
            // group fan-out the admission pool descends in parallel.
            let rpl = &a.iter().next().unwrap().rpl;
            assert_eq!(rpl.elements().len(), 4, "full depth incl. anchor+index");
        }
        let anchors: std::collections::HashSet<RplElement> = effects
            .iter()
            .map(|e| e.iter().next().unwrap().rpl.elements()[0])
            .collect();
        assert_eq!(anchors.len(), 8);
    }

    #[test]
    fn disjoint_effect_sets_are_pairwise_disjoint_and_self_interfering() {
        let sets = disjoint_effect_sets(6, 8);
        for (i, a) in sets.iter().enumerate() {
            assert_eq!(a.len(), 8);
            for (j, b) in sets.iter().enumerate() {
                assert_eq!(a.non_interfering(b), i != j);
                assert_eq!(a.non_interfering(b), pairwise_non_interfering(a, b));
            }
            assert!(a.certainly_non_interfering(&sets[(i + 1) % sets.len()]));
        }
    }
}
