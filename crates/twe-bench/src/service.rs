//! Open-loop service-latency microbenchmark (`BENCH_service.json`).
//!
//! Drives the multi-tenant keyed store of [`twe_apps::service`] through
//! both schedulers and records **per-request scheduling latency** under an
//! open-loop arrival schedule: requests become due at precomputed instants
//! whether or not the runtime keeps up, so a stalled scheduler inflates
//! the measured tail instead of silently slowing the driver (no
//! coordinated omission).
//!
//! Each row is one (scheduler × tenants × rate × mix) cell and reports
//! HDR-style p50/p99/p999 for two spans:
//!
//! * **submit → enable** — admission plus conflict wait: the time the
//!   scheduler took to prove the request isolated. This is the number the
//!   tree scheduler exists to keep flat as tenants multiply.
//! * **submit → complete** — the above plus queueing for a worker and the
//!   request body itself.
//!
//! Rates are honest: every row carries both `requested_rate` (what the
//! schedule encoded) and `achieved_rate` (what the submitter sustained,
//! from the probe's first/last submit stamps). A host that cannot sustain
//! the requested rate shows `achieved_rate < requested_rate` — the rate is
//! never clamped to make a row look on-schedule. `host_cpus` records the
//! measuring host's parallelism; on 1-CPU runners the latency numbers are
//! dominated by timeslicing and CI enforces structure only.
//!
//! Every cell retires tenants continuously (`retire_every`), so the
//! measured tail includes the retirement path — claim purge, tree prune,
//! epoch recycling — not just steady-state traffic.
//!
//! The scheduled-CI latency bar (≥ 4-CPU hosts only) is: tree
//! `enable_p99_ns` ≤ 2× naive at the 4-tenant read-heavy cell — the cell
//! quick mode always emits, so the bar's input exists in every artifact.

use serde::Serialize;
use twe_apps::service::{run_service, OpMix, ServiceConfig};
use twe_runtime::{Runtime, SchedulerKind};

/// One row of `BENCH_service.json`: the latency profile of one
/// (scheduler × tenants × rate × mix) cell of the service workload.
#[derive(Clone, Debug, Serialize)]
pub struct ServiceRow {
    /// Scheduler the cell ran on (`"naive"` or `"tree"`).
    pub scheduler: String,
    /// Concurrently live tenant slots.
    pub tenants: usize,
    /// Keys per tenant store.
    pub keys_per_tenant: usize,
    /// Operation mix label (`"read_heavy"`, `"scan_heavy"`, …).
    pub mix: String,
    /// Open-loop arrival rate the schedule encoded, requests/second.
    pub requested_rate: f64,
    /// Rate the submitter actually sustained (first→last submit stamp);
    /// `< requested_rate` when the host falls behind, never clamped.
    pub achieved_rate: f64,
    /// Requests in the schedule (excluding retire events).
    pub requests: usize,
    /// Requests that completed and were reaped (must equal `requests`).
    pub completed: u64,
    /// Tenant retire events processed during the run.
    pub retired_tenants: usize,
    /// submit→enable p50, nanoseconds.
    pub enable_p50_ns: u64,
    /// submit→enable p99, nanoseconds — the CI bar's quantity.
    pub enable_p99_ns: u64,
    /// submit→enable p99.9, nanoseconds.
    pub enable_p999_ns: u64,
    /// submit→complete p50, nanoseconds.
    pub complete_p50_ns: u64,
    /// submit→complete p99, nanoseconds.
    pub complete_p99_ns: u64,
    /// submit→complete p99.9, nanoseconds.
    pub complete_p999_ns: u64,
    /// Samples clamped at the histogram's bounded range (nonzero means
    /// the p999 columns understate a pathological tail).
    pub saturated: u64,
    /// Worker threads of the runtime under test.
    pub threads: usize,
    /// `std::thread::available_parallelism()` of the measuring host; the
    /// CI latency bar is gated on it (structure-only below 4).
    pub host_cpus: usize,
}

/// Tenant counts the full-mode service sweep covers.
pub const SERVICE_TENANTS: [usize; 2] = [4, 16];

/// Requested arrival rates (requests/second) the full-mode sweep covers.
pub const SERVICE_RATES: [f64; 2] = [20_000.0, 80_000.0];

/// Runs one cell and flattens its report into a [`ServiceRow`].
fn service_row(kind: SchedulerKind, threads: usize, cfg: &ServiceConfig) -> ServiceRow {
    let rt = Runtime::new(threads, kind);
    let report = run_service(&rt, cfg);
    let (enable_p50_ns, enable_p99_ns, enable_p999_ns) = report.enable.p50_p99_p999();
    let (complete_p50_ns, complete_p99_ns, complete_p999_ns) = report.complete.p50_p99_p999();
    ServiceRow {
        scheduler: match kind {
            SchedulerKind::Naive => "naive".to_string(),
            SchedulerKind::Tree => "tree".to_string(),
        },
        tenants: cfg.tenants,
        keys_per_tenant: cfg.keys_per_tenant,
        mix: cfg.mix.label(),
        requested_rate: report.requested_rate,
        achieved_rate: report.achieved_rate,
        requests: cfg.requests,
        completed: report.completed,
        retired_tenants: report.retired_tenants,
        enable_p50_ns,
        enable_p99_ns,
        enable_p999_ns,
        complete_p50_ns,
        complete_p99_ns,
        complete_p999_ns,
        saturated: report.enable.saturated() + report.complete.saturated(),
        threads,
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Runs the service-latency sweep.
///
/// Full mode covers [`SERVICE_TENANTS`] × [`SERVICE_RATES`] ×
/// {read-heavy, scan-heavy} on both schedulers with continuous tenant
/// retirement. Quick mode keeps the 4-tenant read-heavy cell at the lower
/// rate on both schedulers — the exact cell the scheduled-CI latency bar
/// reads, so every smoke artifact contains the bar's input.
pub fn run_service_bench(quick: bool) -> Vec<ServiceRow> {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // More workers than cores just adds timeslice noise to the tail.
    let threads = host_cpus.clamp(2, 4);
    let mut rows = Vec::new();
    if quick {
        for kind in [SchedulerKind::Naive, SchedulerKind::Tree] {
            let cfg = ServiceConfig {
                tenants: 4,
                keys_per_tenant: 64,
                requests: 4_000,
                rate_per_sec: SERVICE_RATES[0],
                mix: OpMix::READ_HEAVY,
                seed: 9,
                retire_every: Some(1_000),
                reapers: 2,
            };
            rows.push(service_row(kind, threads, &cfg));
        }
        return rows;
    }
    for kind in [SchedulerKind::Naive, SchedulerKind::Tree] {
        for tenants in SERVICE_TENANTS {
            for rate_per_sec in SERVICE_RATES {
                for mix in [OpMix::READ_HEAVY, OpMix::SCAN_HEAVY] {
                    // Fixed request count per cell (the rate changes the
                    // arrival span, not the sample size): 12k samples give
                    // a stable p99.9, and the worst-case backlog stays in
                    // the range the naive scheduler's O(queue) rescans can
                    // drain — an open-loop driver that outruns the single
                    // queue for long enough makes every completion rescan
                    // tens of thousands of waiters, which on a small host
                    // turns the cell into an hours-long quadratic grind
                    // rather than a latency measurement. Retires ~8
                    // tenants along the way.
                    let requests = 12_000;
                    let cfg = ServiceConfig {
                        tenants,
                        keys_per_tenant: 64,
                        requests,
                        rate_per_sec,
                        mix,
                        seed: 9,
                        retire_every: Some((requests / 8).max(1)),
                        reapers: 2,
                    };
                    eprintln!(
                        "# service cell: {:?} tenants={} rate={} mix={}",
                        kind,
                        tenants,
                        rate_per_sec,
                        cfg.mix.label()
                    );
                    rows.push(service_row(kind, threads, &cfg));
                }
            }
        }
    }
    rows
}

/// Pretty-prints the service microbenchmark rows.
pub fn print_service_rows(rows: &[ServiceRow]) {
    println!(
        "{:<7} {:>7} {:>11} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "sched",
        "tenants",
        "mix",
        "req rate",
        "ach rate",
        "enable p50",
        "enable p99",
        "compl p99",
        "compl p999"
    );
    for r in rows {
        println!(
            "{:<7} {:>7} {:>11} {:>10.0} {:>10.0} {:>10}ns {:>10}ns {:>10}ns {:>10}ns",
            r.scheduler,
            r.tenants,
            r.mix,
            r.requested_rate,
            r.achieved_rate,
            r.enable_p50_ns,
            r.enable_p99_ns,
            r.complete_p99_ns,
            r.complete_p999_ns
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_rows_are_structurally_sound() {
        // A tiny cell (not the quick-mode workload: CI's smoke step runs
        // that) — enough to pin the row invariants on both schedulers:
        // every request completes and is sampled, latencies are nonzero
        // with enable ≤ complete per quantile, and the rate columns are
        // honest (requested echoed verbatim, achieved measured).
        for kind in [SchedulerKind::Naive, SchedulerKind::Tree] {
            let cfg = ServiceConfig {
                tenants: 2,
                keys_per_tenant: 8,
                requests: 300,
                rate_per_sec: 200_000.0,
                mix: OpMix::READ_HEAVY,
                seed: 3,
                retire_every: Some(100),
                reapers: 2,
            };
            let row = service_row(kind, 2, &cfg);
            assert_eq!(row.completed, cfg.requests as u64);
            assert_eq!(row.retired_tenants, 3);
            assert_eq!(row.requested_rate, cfg.rate_per_sec);
            assert!(row.achieved_rate > 0.0);
            assert!(row.enable_p50_ns > 0, "probe stamped enable latencies");
            assert!(row.complete_p50_ns > 0);
            // submit→complete dominates submit→enable pointwise, so every
            // quantile of the complete histogram bounds the enable one.
            assert!(row.complete_p50_ns >= row.enable_p50_ns);
            assert!(row.complete_p99_ns >= row.enable_p99_ns);
            assert!(row.complete_p999_ns >= row.enable_p999_ns);
            assert_eq!(row.saturated, 0, "smoke latencies fit the 2^38 ns range");
            assert!(row.host_cpus >= 1);
        }
    }
}
