//! Open-loop service-latency microbenchmark (`BENCH_service.json`).
//!
//! Drives the multi-tenant keyed store of [`twe_apps::service`] through
//! both schedulers and records **per-request scheduling latency** under an
//! open-loop arrival schedule: requests become due at precomputed instants
//! whether or not the runtime keeps up, so a stalled scheduler inflates
//! the measured tail instead of silently slowing the driver (no
//! coordinated omission).
//!
//! Each row is one (scheduler × tenants × rate × mix) cell and reports
//! HDR-style p50/p99/p999 for two spans:
//!
//! * **submit → enable** — admission plus conflict wait: the time the
//!   scheduler took to prove the request isolated. This is the number the
//!   tree scheduler exists to keep flat as tenants multiply.
//! * **submit → complete** — the above plus queueing for a worker and the
//!   request body itself.
//!
//! Rates are honest: every row carries both `requested_rate` (what the
//! schedule encoded) and `achieved_rate` (what the submitter sustained,
//! from the probe's first/last submit stamps). A host that cannot sustain
//! the requested rate shows `achieved_rate < requested_rate` — the rate is
//! never clamped to make a row look on-schedule. `host_cpus` records the
//! measuring host's parallelism; on 1-CPU runners the latency numbers are
//! dominated by timeslicing and CI enforces structure only.
//!
//! Every sustainable-rate cell retires tenants continuously
//! (`retire_every`), so the measured tail includes the retirement path —
//! claim purge, tree prune, epoch recycling — not just steady-state
//! traffic; its request count scales with the rate so every cell spans
//! [`SERVICE_SPAN_SECS`] of arrivals.
//!
//! On top of the sustainable sweep, **saturation cells** drive each
//! scheduler at [`SATURATION_RATE`] — far past what any host drains —
//! under each admission policy. Their rows carry the backpressure
//! columns: `policy`, `depth_cap`, `peak_queue_depth` (how deep the
//! backlog actually got), `shed`, and `shed_rate`. The unbounded cell is
//! the "before" picture — the gauge records how deep an uncapped backlog
//! grows and what that does to the tails — and it is deliberately modest
//! in request count: every service path anchors at its tenant's
//! `(depth-1, depth-2)` pair, so the waiter index narrows a wakeup to
//! one tenant's writer buckets (not to a key), and an uncapped backlog
//! still drains superlinearly in the depth of each tenant's waiting
//! write/scan chain. That is the point the cell makes: backpressure, not
//! wakeup indexing, is what keeps a saturated open-loop service
//! survivable — the bounded cells cap the waiting set at
//! [`SATURATION_DEPTH_CAP`], and their tails collapse.
//!
//! The scheduled-CI latency bar (≥ 4-CPU hosts only) is: tree
//! `enable_p99_ns` ≤ 2× naive at the 4-tenant read-heavy cell — the cell
//! quick mode always emits, so the bar's input exists in every artifact.

use serde::Serialize;
use twe_apps::service::{build_runtime, run_service, OpMix, ServiceConfig};
use twe_runtime::{AdmissionPolicy, SchedulerKind};

/// One row of `BENCH_service.json`: the latency profile of one
/// (scheduler × tenants × rate × mix) cell of the service workload.
#[derive(Clone, Debug, Serialize)]
pub struct ServiceRow {
    /// Scheduler the cell ran on (`"naive"` or `"tree"`).
    pub scheduler: String,
    /// Concurrently live tenant slots.
    pub tenants: usize,
    /// Keys per tenant store.
    pub keys_per_tenant: usize,
    /// Operation mix label (`"read_heavy"`, `"scan_heavy"`, …).
    pub mix: String,
    /// Open-loop arrival rate the schedule encoded, requests/second.
    pub requested_rate: f64,
    /// Rate the submitter actually sustained (first→last submit stamp);
    /// `< requested_rate` when the host falls behind, never clamped.
    pub achieved_rate: f64,
    /// Requests in the schedule (excluding retire events).
    pub requests: usize,
    /// Requests that completed and were reaped (equals `requests` minus
    /// `shed`).
    pub completed: u64,
    /// Admission policy label: `"unbounded"`, `"block"`, or `"shed"`.
    pub policy: String,
    /// Queue-depth cap of a bounded policy; `null` for unbounded cells.
    pub depth_cap: Option<usize>,
    /// Deepest the runtime's queue-depth gauge got during the run. A
    /// bounded cell reports at most `depth_cap`; unbounded saturation
    /// cells show how far an open-loop backlog actually grows.
    pub peak_queue_depth: usize,
    /// Requests the admission policy refused (nonzero only for shed
    /// cells under saturation).
    pub shed: u64,
    /// `shed / requests` — the fraction of arrivals refused.
    pub shed_rate: f64,
    /// Tenant retire events processed during the run.
    pub retired_tenants: usize,
    /// submit→enable p50, nanoseconds.
    pub enable_p50_ns: u64,
    /// submit→enable p99, nanoseconds — the CI bar's quantity.
    pub enable_p99_ns: u64,
    /// submit→enable p99.9, nanoseconds.
    pub enable_p999_ns: u64,
    /// submit→complete p50, nanoseconds.
    pub complete_p50_ns: u64,
    /// submit→complete p99, nanoseconds.
    pub complete_p99_ns: u64,
    /// submit→complete p99.9, nanoseconds.
    pub complete_p999_ns: u64,
    /// Samples clamped at the histogram's bounded range (nonzero means
    /// the p999 columns understate a pathological tail).
    pub saturated: u64,
    /// Worker threads of the runtime under test.
    pub threads: usize,
    /// `std::thread::available_parallelism()` of the measuring host; the
    /// CI latency bar is gated on it (structure-only below 4).
    pub host_cpus: usize,
}

/// Tenant counts the full-mode service sweep covers.
pub const SERVICE_TENANTS: [usize; 2] = [4, 16];

/// Requested arrival rates (requests/second) the full-mode sweep covers.
pub const SERVICE_RATES: [f64; 2] = [20_000.0, 80_000.0];

/// Arrival span (seconds) a sustainable-rate cell encodes; the request
/// count scales with the requested rate to keep it, so faster cells keep
/// their sample size instead of finishing in a blink.
pub const SERVICE_SPAN_SECS: f64 = 0.3;

/// Requested rate of the saturation cells — far above what any test host
/// drains, so the open-loop backlog grows until a policy pushes back.
pub const SATURATION_RATE: f64 = 2_000_000.0;

/// Queue-depth cap the bounded saturation cells run with.
pub const SATURATION_DEPTH_CAP: usize = 1_024;

/// Request count for a sustainable cell: enough arrivals to span
/// [`SERVICE_SPAN_SECS`] at the requested rate (floored so slow-rate
/// cells still collect a stable p99).
pub fn requests_for_rate(rate_per_sec: f64) -> usize {
    ((rate_per_sec * SERVICE_SPAN_SECS) as usize).max(2_000)
}

/// Runs one cell and flattens its report into a [`ServiceRow`]. The
/// runtime is built fresh per cell with the config's admission policy, so
/// `peak_queue_depth` and `shed` are per-cell exact.
fn service_row(kind: SchedulerKind, threads: usize, cfg: &ServiceConfig) -> ServiceRow {
    let rt = build_runtime(cfg, threads, kind);
    let report = run_service(&rt, cfg);
    let (enable_p50_ns, enable_p99_ns, enable_p999_ns) = report.enable.p50_p99_p999();
    let (complete_p50_ns, complete_p99_ns, complete_p999_ns) = report.complete.p50_p99_p999();
    ServiceRow {
        scheduler: match kind {
            SchedulerKind::Naive => "naive".to_string(),
            SchedulerKind::Tree => "tree".to_string(),
        },
        tenants: cfg.tenants,
        keys_per_tenant: cfg.keys_per_tenant,
        mix: cfg.mix.label(),
        requested_rate: report.requested_rate,
        achieved_rate: report.achieved_rate,
        requests: cfg.requests,
        completed: report.completed,
        policy: cfg.policy.label().to_string(),
        depth_cap: cfg.policy.max_queued(),
        peak_queue_depth: report.peak_queue_depth,
        shed: report.shed,
        shed_rate: report.shed as f64 / cfg.requests as f64,
        retired_tenants: report.retired_tenants,
        enable_p50_ns,
        enable_p99_ns,
        enable_p999_ns,
        complete_p50_ns,
        complete_p99_ns,
        complete_p999_ns,
        saturated: report.enable.saturated() + report.complete.saturated(),
        threads,
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// One saturation cell: a rate no host sustains, on the given policy.
/// The request count is fixed (not rate-scaled — the whole schedule is
/// due almost immediately, so "span" is meaningless here); what varies
/// is how the backlog is handled: unbounded cells let it grow to
/// `peak_queue_depth`, block cells throttle the submitter at the cap,
/// shed cells refuse the overflow and report `shed_rate`.
fn saturation_cfg(requests: usize, policy: AdmissionPolicy, seed: u64) -> ServiceConfig {
    ServiceConfig {
        tenants: 4,
        keys_per_tenant: 64,
        requests,
        rate_per_sec: SATURATION_RATE,
        mix: OpMix::READ_HEAVY,
        seed,
        retire_every: None,
        reapers: 2,
        policy,
    }
}

/// Runs the service-latency sweep.
///
/// Full mode covers [`SERVICE_TENANTS`] × [`SERVICE_RATES`] ×
/// {read-heavy, scan-heavy} on both schedulers with continuous tenant
/// retirement — request counts scale with the rate
/// ([`requests_for_rate`]) so every cell spans [`SERVICE_SPAN_SECS`] —
/// plus saturation cells at [`SATURATION_RATE`] under each admission
/// policy. Quick mode keeps the 4-tenant read-heavy cell at the lower
/// rate on both schedulers — the exact cell the scheduled-CI latency bar
/// reads, so every smoke artifact contains the bar's input — plus one
/// small saturation cell per policy per scheduler for the structural
/// push-CI assertions (depth capped, shed accounted).
pub fn run_service_bench(quick: bool) -> Vec<ServiceRow> {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // More workers than cores just adds timeslice noise to the tail.
    let threads = host_cpus.clamp(2, 4);
    let policies = [
        AdmissionPolicy::Unbounded,
        AdmissionPolicy::BoundedBlock {
            max_queued: SATURATION_DEPTH_CAP,
        },
        AdmissionPolicy::BoundedShed {
            max_queued: SATURATION_DEPTH_CAP,
        },
    ];
    let mut rows = Vec::new();
    if quick {
        for kind in [SchedulerKind::Naive, SchedulerKind::Tree] {
            let cfg = ServiceConfig {
                tenants: 4,
                keys_per_tenant: 64,
                requests: 4_000,
                rate_per_sec: SERVICE_RATES[0],
                mix: OpMix::READ_HEAVY,
                seed: 9,
                retire_every: Some(1_000),
                reapers: 2,
                policy: AdmissionPolicy::Unbounded,
            };
            rows.push(service_row(kind, threads, &cfg));
            for policy in policies {
                rows.push(service_row(
                    kind,
                    threads,
                    &saturation_cfg(4_000, policy, 9),
                ));
            }
        }
        return rows;
    }
    for kind in [SchedulerKind::Naive, SchedulerKind::Tree] {
        for tenants in SERVICE_TENANTS {
            for rate_per_sec in SERVICE_RATES {
                for mix in [OpMix::READ_HEAVY, OpMix::SCAN_HEAVY] {
                    let requests = requests_for_rate(rate_per_sec);
                    let cfg = ServiceConfig {
                        tenants,
                        keys_per_tenant: 64,
                        requests,
                        rate_per_sec,
                        mix,
                        seed: 9,
                        retire_every: Some((requests / 8).max(1)),
                        reapers: 2,
                        policy: AdmissionPolicy::Unbounded,
                    };
                    eprintln!(
                        "# service cell: {:?} tenants={} rate={} mix={}",
                        kind,
                        tenants,
                        rate_per_sec,
                        cfg.mix.label()
                    );
                    rows.push(service_row(kind, threads, &cfg));
                }
            }
        }
        for policy in policies {
            eprintln!(
                "# service saturation cell: {:?} policy={}",
                kind,
                policy.label()
            );
            rows.push(service_row(
                kind,
                threads,
                &saturation_cfg(12_000, policy, 9),
            ));
        }
    }
    rows
}

/// Pretty-prints the service microbenchmark rows.
pub fn print_service_rows(rows: &[ServiceRow]) {
    println!(
        "{:<7} {:>7} {:>11} {:>9} {:>10} {:>10} {:>9} {:>6} {:>12} {:>12} {:>12}",
        "sched",
        "tenants",
        "mix",
        "policy",
        "req rate",
        "ach rate",
        "peak q",
        "shed%",
        "enable p99",
        "compl p99",
        "compl p999"
    );
    for r in rows {
        println!(
            "{:<7} {:>7} {:>11} {:>9} {:>10.0} {:>10.0} {:>9} {:>6.1} {:>10}ns {:>10}ns {:>10}ns",
            r.scheduler,
            r.tenants,
            r.mix,
            r.policy,
            r.requested_rate,
            r.achieved_rate,
            r.peak_queue_depth,
            r.shed_rate * 100.0,
            r.enable_p99_ns,
            r.complete_p99_ns,
            r.complete_p999_ns
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_rows_are_structurally_sound() {
        // A tiny cell (not the quick-mode workload: CI's smoke step runs
        // that) — enough to pin the row invariants on both schedulers:
        // every request completes and is sampled, latencies are nonzero
        // with enable ≤ complete per quantile, and the rate columns are
        // honest (requested echoed verbatim, achieved measured).
        for kind in [SchedulerKind::Naive, SchedulerKind::Tree] {
            let cfg = ServiceConfig {
                tenants: 2,
                keys_per_tenant: 8,
                requests: 300,
                rate_per_sec: 200_000.0,
                mix: OpMix::READ_HEAVY,
                seed: 3,
                retire_every: Some(100),
                reapers: 2,
                policy: AdmissionPolicy::Unbounded,
            };
            let row = service_row(kind, 2, &cfg);
            assert_eq!(row.completed, cfg.requests as u64);
            assert_eq!(row.retired_tenants, 3);
            assert_eq!(row.requested_rate, cfg.rate_per_sec);
            assert!(row.achieved_rate > 0.0);
            assert_eq!(row.policy, "unbounded");
            assert_eq!(row.depth_cap, None);
            assert_eq!(row.shed, 0);
            assert_eq!(row.shed_rate, 0.0);
            assert!(row.peak_queue_depth > 0, "the gauge must have moved");
            assert!(row.enable_p50_ns > 0, "probe stamped enable latencies");
            assert!(row.complete_p50_ns > 0);
            // submit→complete dominates submit→enable pointwise, so every
            // quantile of the complete histogram bounds the enable one.
            assert!(row.complete_p50_ns >= row.enable_p50_ns);
            assert!(row.complete_p99_ns >= row.enable_p99_ns);
            assert!(row.complete_p999_ns >= row.enable_p999_ns);
            assert_eq!(row.saturated, 0, "smoke latencies fit the 2^38 ns range");
            assert!(row.host_cpus >= 1);
        }
    }

    #[test]
    fn saturation_rows_respect_their_policy() {
        // A miniature of the quick-mode saturation cells: the open-loop
        // schedule outruns the pool, and each policy's row must show its
        // signature — bounded peak for block, accounted refusals for
        // shed, and full completion for both non-shedding policies.
        for kind in [SchedulerKind::Naive, SchedulerKind::Tree] {
            for policy in [
                AdmissionPolicy::BoundedBlock { max_queued: 32 },
                AdmissionPolicy::BoundedShed { max_queued: 32 },
            ] {
                let row = service_row(kind, 2, &saturation_cfg(1_500, policy, 5));
                assert_eq!(row.requested_rate, SATURATION_RATE);
                assert_eq!(row.depth_cap, Some(32));
                assert!(
                    row.peak_queue_depth <= 32,
                    "{kind:?} {policy:?}: peak {} above cap",
                    row.peak_queue_depth
                );
                assert_eq!(
                    row.completed + row.shed,
                    row.requests as u64,
                    "{kind:?} {policy:?}"
                );
                match policy {
                    AdmissionPolicy::BoundedBlock { .. } => {
                        assert_eq!(row.shed, 0, "{kind:?}");
                        assert_eq!(row.shed_rate, 0.0, "{kind:?}");
                    }
                    AdmissionPolicy::BoundedShed { .. } => {
                        assert!(row.shed > 0, "{kind:?}: saturation must shed");
                        assert!(row.shed_rate > 0.0 && row.shed_rate < 1.0, "{kind:?}");
                    }
                    AdmissionPolicy::Unbounded => unreachable!(),
                }
            }
        }
    }
}
