//! First-intern throughput microbenchmark (`BENCH_intern.json`).
//!
//! Measures cold-start interning of fresh `Data:[i]:[j]` subtrees — the
//! workload a first fan-out sweep over a new partition generates — at
//! 1/2/4/8 threads, against two implementations:
//!
//! * **sharded** — the real arena (`twe_effects::arena`), whose child index
//!   is split into per-parent lock shards, so threads interning children of
//!   distinct parents never contend;
//! * **single-lock** — a local replica of the pre-shard discipline (one
//!   `RwLock` around one child map, ids allocated under it), the structure
//!   the arena had before its write side was sharded.
//!
//! Each measurement round interns a *fresh* subtree (a new root name per
//! round), so every timed operation is a genuine first-intern: threads
//! partition the `[i]` parents among themselves and intern each parent's
//! `[j]` children through `intern_child` — the incremental shape
//! `Rpl::child` and the tree scheduler's node-creation path produce.
//!
//! Two ratios matter:
//!
//! * `sharded_scaling_vs_1t` — multi-core scaling of the sharded write
//!   path. Only meaningful on hosts with enough CPUs (the record carries
//!   `host_cpus`; the CI bar applies at `host_cpus >= 4`).
//! * `sharded_vs_single_lock` — same thread count, sharded vs the
//!   single-lock replica. Meaningful even on a 1-CPU host: oversubscribed
//!   threads degrade the single write lock (handoff + parking) while the
//!   sharded index stays near-flat.

use parking_lot::RwLock;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Instant;
use twe_effects::arena::store_layout::{locate, BUCKET_COUNT, FIRST_BUCKET_LEN};
use twe_effects::idhash::IdHasherBuilder;
use twe_effects::{arena, RplElement};

/// One row of `BENCH_intern.json`: first-intern throughput at one thread
/// count, sharded arena vs the single-lock baseline replica.
#[derive(Clone, Debug, Serialize)]
pub struct InternRow {
    /// Interning threads used for this row.
    pub threads: usize,
    /// Fresh `Data:[i]` parents per round (partitioned among the threads).
    pub parents: usize,
    /// Fresh `[j]` children interned under each parent.
    pub children_per_parent: usize,
    /// First-interns per second through the sharded arena (best round).
    pub sharded_interns_per_sec: f64,
    /// First-interns per second through the single-lock replica (best round).
    pub single_lock_interns_per_sec: f64,
    /// Sharded throughput at this thread count over sharded at 1 thread.
    pub sharded_scaling_vs_1t: f64,
    /// Single-lock throughput at this thread count over single-lock at
    /// 1 thread.
    pub single_lock_scaling_vs_1t: f64,
    /// `sharded_interns_per_sec / single_lock_interns_per_sec` (same thread
    /// count).
    pub sharded_vs_single_lock: f64,
    /// `std::thread::available_parallelism()` of the measuring host. Scaling
    /// ratios cannot exceed this; CI enforcement is gated on it.
    pub host_cpus: usize,
}

/// Thread counts the intern bench sweeps.
pub const INTERN_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Fresh-subtree round counter: every measurement round interns below a
/// brand-new root name so all of its interns are first-interns.
static FRESH_ROOT: AtomicUsize = AtomicUsize::new(0);

fn fresh_root_elem() -> RplElement {
    let n = FRESH_ROOT.fetch_add(1, Ordering::Relaxed);
    RplElement::name(&format!("InternBench{n}"))
}

/// A faithful replica of the arena's *pre-shard* write side: the same
/// append-only chunked store of `OnceLock` slots (identical bucket layout
/// and publication protocol), with one single `RwLock` over the one child
/// map — ids allocated and entries published under that single write lock
/// (double-checked, like the original). Entry construction does the same
/// per-intern work as the real arena (element path + id path built and
/// leaked, slot release-published), and the child map uses the same
/// multiply-rotate id hasher as the real arena's shard maps, so the
/// sharded-vs-single-lock ratio isolates the locking discipline alone —
/// not the entry bookkeeping and not the hash function.
struct SingleLockArena {
    buckets: [std::sync::OnceLock<Box<[std::sync::OnceLock<SingleLockEntry>]>>; BUCKET_COUNT],
    children: RwLock<HashMap<(u32, RplElement), u32, IdHasherBuilder>>,
    len: AtomicUsize,
}

#[derive(Clone, Copy)]
struct SingleLockEntry {
    #[allow(dead_code)]
    parent: u32,
    path: &'static [RplElement],
    id_path: &'static [u32],
}

fn new_bucket(bucket: usize) -> Box<[std::sync::OnceLock<SingleLockEntry>]> {
    (0..FIRST_BUCKET_LEN << bucket)
        .map(|_| std::sync::OnceLock::new())
        .collect()
}

/// The process-global replica instance (mirrors the real arena's
/// process-global lifetime; its leaks are bounded by the bench workload).
fn single_lock_arena() -> &'static SingleLockArena {
    static BASELINE: std::sync::OnceLock<SingleLockArena> = std::sync::OnceLock::new();
    BASELINE.get_or_init(|| {
        let a = SingleLockArena {
            buckets: [const { std::sync::OnceLock::new() }; BUCKET_COUNT],
            children: RwLock::new(HashMap::default()),
            len: AtomicUsize::new(1),
        };
        let bucket0 = a.buckets[0].get_or_init(|| new_bucket(0));
        let root = SingleLockEntry {
            parent: 0,
            path: &[],
            id_path: Box::leak(vec![0u32].into_boxed_slice()),
        };
        assert!(bucket0[0].set(root).is_ok());
        a
    })
}

impl SingleLockArena {
    fn entry(&self, id: u32) -> &SingleLockEntry {
        let (bucket, offset) = locate(id as usize);
        self.buckets[bucket]
            .get()
            .and_then(|slots| slots[offset].get())
            .expect("baseline id used before publication")
    }

    fn intern_child(&self, parent: u32, elem: RplElement) -> u32 {
        if let Some(&id) = self.children.read().get(&(parent, elem)) {
            return id;
        }
        let mut children = self.children.write();
        if let Some(&id) = children.get(&(parent, elem)) {
            return id;
        }
        // Only this thread (holding the single write lock) appends — the
        // pre-shard discipline the sharded arena replaced.
        let index = self.len.load(Ordering::Relaxed);
        let id = u32::try_from(index).expect("baseline arena overflow");
        let parent_entry = self.entry(parent);
        let mut path = parent_entry.path.to_vec();
        path.push(elem);
        let mut id_path = parent_entry.id_path.to_vec();
        id_path.push(id);
        let (bucket, offset) = locate(index);
        let slots = self.buckets[bucket].get_or_init(|| new_bucket(bucket));
        let published = slots[offset]
            .set(SingleLockEntry {
                parent,
                path: Box::leak(path.into_boxed_slice()),
                id_path: Box::leak(id_path.into_boxed_slice()),
            })
            .is_ok();
        assert!(published, "baseline slot {index} published twice");
        self.len.store(index + 1, Ordering::Release);
        children.insert((parent, elem), id);
        id
    }
}

/// Runs `work(thread_index)` on `threads` threads released together by a
/// barrier, and returns the wall-clock span `max(end) − min(start)` over
/// the workers' *own* timestamps. Timing inside the workers keeps the span
/// honest even on an oversubscribed host, where the coordinating thread may
/// not be rescheduled until the workers have already finished (spawn cost
/// stays excluded: clocks start after the barrier).
pub(crate) fn timed_parallel(threads: usize, work: impl Fn(usize) + Sync) -> f64 {
    let barrier = Barrier::new(threads);
    let spans = parking_lot::Mutex::new(Vec::with_capacity(threads));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let barrier = &barrier;
            let work = &work;
            let spans = &spans;
            scope.spawn(move || {
                barrier.wait();
                let start = Instant::now();
                work(t);
                let end = Instant::now();
                spans.lock().push((start, end));
            });
        }
    });
    let spans = spans.into_inner();
    let first = spans.iter().map(|(s, _)| *s).min().expect("no workers");
    let last = spans.iter().map(|(_, e)| *e).max().expect("no workers");
    last.duration_since(first).as_secs_f64()
}

/// Best-of-`rounds` first-intern throughput (interns/second) of the real
/// sharded arena for a `parents` × `children` fresh subtree split across
/// `threads` threads.
fn sharded_round(threads: usize, parents: usize, children: usize, rounds: usize) -> f64 {
    let per_round_ops = (parents * (children + 1)) as f64;
    let mut best = f64::MAX;
    for _ in 0..rounds {
        let root = arena::intern_child(arena::RplId::ROOT, fresh_root_elem());
        let secs = timed_parallel(threads, |t| {
            let mut i = t;
            while i < parents {
                let parent = arena::intern_child(root, RplElement::Index(i as i64));
                for j in 0..children {
                    arena::intern_child(parent, RplElement::Index(j as i64));
                }
                i += threads;
            }
        });
        best = best.min(secs);
    }
    per_round_ops / best.max(1e-12)
}

/// Best-of-`rounds` throughput of the single-lock replica on the identical
/// workload. The replica is the same process-global append-only instance
/// across all rounds and thread counts (exactly like the real arena on the
/// sharded side); freshness comes from a new subtree root per round.
fn single_lock_round(threads: usize, parents: usize, children: usize, rounds: usize) -> f64 {
    let per_round_ops = (parents * (children + 1)) as f64;
    let replica = single_lock_arena();
    let mut best = f64::MAX;
    for _ in 0..rounds {
        // A fresh subtree per round: a new child of the replica's root keeps
        // every timed intern a first-intern, exactly like the sharded side.
        let root = replica.intern_child(0, fresh_root_elem());
        let secs = timed_parallel(threads, |t| {
            let mut i = t;
            while i < parents {
                let parent = replica.intern_child(root, RplElement::Index(i as i64));
                for j in 0..children {
                    replica.intern_child(parent, RplElement::Index(j as i64));
                }
                i += threads;
            }
        });
        best = best.min(secs);
    }
    per_round_ops / best.max(1e-12)
}

/// Runs the first-intern scaling sweep: one [`InternRow`] per thread count
/// in [`INTERN_THREADS`], sharded arena vs single-lock replica on identical
/// fresh `Data:[i]:[j]` workloads.
pub fn run_intern_bench(quick: bool) -> Vec<InternRow> {
    let (parents, children, rounds) = if quick { (64, 48, 3) } else { (128, 128, 5) };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // One untimed warm-up round per implementation at the widest thread
    // count: pays the allocator, page-fault and map-growth cold costs up
    // front so they do not land on whichever configuration happens to run
    // first (the 1-thread rows every scaling ratio divides by).
    let widest = *INTERN_THREADS.last().unwrap();
    let _ = sharded_round(widest, parents, children, 1);
    let _ = single_lock_round(widest, parents, children, 1);
    let mut rows = Vec::new();
    let mut sharded_1t = 0.0f64;
    let mut single_1t = 0.0f64;
    for threads in INTERN_THREADS {
        let sharded = sharded_round(threads, parents, children, rounds);
        let single = single_lock_round(threads, parents, children, rounds);
        if threads == 1 {
            sharded_1t = sharded;
            single_1t = single;
        }
        rows.push(InternRow {
            threads,
            parents,
            children_per_parent: children,
            sharded_interns_per_sec: sharded,
            single_lock_interns_per_sec: single,
            sharded_scaling_vs_1t: sharded / sharded_1t.max(1e-12),
            single_lock_scaling_vs_1t: single / single_1t.max(1e-12),
            sharded_vs_single_lock: sharded / single.max(1e-12),
            host_cpus,
        });
    }
    rows
}

/// Pretty-prints the intern microbenchmark rows.
pub fn print_intern_rows(rows: &[InternRow]) {
    println!(
        "{:<8} {:>16} {:>18} {:>12} {:>14} {:>12}",
        "threads", "sharded ops/s", "single-lock ops/s", "scaling", "1-lock scaling", "vs 1-lock"
    );
    for r in rows {
        println!(
            "{:<8} {:>16.0} {:>18.0} {:>11.2}x {:>13.2}x {:>11.2}x",
            r.threads,
            r.sharded_interns_per_sec,
            r.single_lock_interns_per_sec,
            r.sharded_scaling_vs_1t,
            r.single_lock_scaling_vs_1t,
            r.sharded_vs_single_lock
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_lock_replica_interns_canonically() {
        let a = single_lock_arena();
        let p = a.intern_child(0, fresh_root_elem());
        let c1 = a.intern_child(p, RplElement::Index(7));
        let c2 = a.intern_child(p, RplElement::Index(7));
        assert_eq!(c1, c2);
        assert!(p < c1, "parent id must precede child id");
        assert_eq!(a.entry(c1).path.len(), 2);
        assert_eq!(a.entry(c1).id_path.len(), 3);
    }

    #[test]
    fn intern_rows_have_consistent_ratios() {
        let rows = run_intern_bench(true);
        assert_eq!(rows.len(), INTERN_THREADS.len());
        assert!((rows[0].sharded_scaling_vs_1t - 1.0).abs() < 1e-9);
        assert!((rows[0].single_lock_scaling_vs_1t - 1.0).abs() < 1e-9);
        for r in &rows {
            assert!(r.sharded_interns_per_sec > 0.0);
            assert!(r.single_lock_interns_per_sec > 0.0);
            assert!(r.host_cpus >= 1);
        }
    }
}
