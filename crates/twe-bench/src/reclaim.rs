//! Dynamic-region churn microbenchmark (`BENCH_reclaim.json`).
//!
//! Measures create/drop churn of dynamic reference regions — the workload a
//! fleet of short-lived `DynCell`s generates — against the two reclaimers
//! behind the `twe_effects::reclaim` module boundary:
//!
//! * **leak** — the pre-reclamation discipline: every region allocation
//!   interns a fresh arena id forever (`Reclaimer::retire` is a no-op), so
//!   the interned arena grows linearly with churn;
//! * **epoch** — the epoch/QSBR reclaimer: retired ids pass through a
//!   two-epoch limbo window and are then *recycled* (same interned id, new
//!   generation), so the arena footprint is bounded by the live window plus
//!   the limbo transient regardless of how long the churn runs.
//!
//! While `threads` churners allocate and retire regions as fast as they
//! can, two reader threads continuously pin, load the most recently
//! published region handle, and run real RPL relation walks over it
//! (`__DynRegion:*` vs the region, the region vs a static partition) — the
//! conflict-plane reads the pin protocol exists to protect. Readers also
//! verify the generation check on every walk: a handle observed stale under
//! the pin must never report current.
//!
//! Two numbers matter per row:
//!
//! * `epoch_vs_leak` — churn throughput of the epoch reclaimer relative to
//!   the leaking baseline at the same thread count. Reclamation pays CAS +
//!   limbo bookkeeping per cycle; the bar is that it stays within a small
//!   constant factor (CI enforces ≥ 0.8× on ≥ 4-CPU hosts).
//! * `epoch_arena_growth` vs `leak_arena_growth` — interned entries added
//!   during the run. The leak row grows by ~`total_cycles`; the epoch row
//!   must stay bounded (CI enforces an absolute ceiling) — the leak PR 7
//!   exists to close.

use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use twe_effects::reclaim::{DynRegion, Epoch, Leak, Reclaimer};
use twe_effects::{arena, Rpl, RplElement};

use crate::intern::timed_parallel;

/// One row of `BENCH_reclaim.json`: region churn throughput at one churn
/// thread count, epoch reclaimer vs leaking baseline, with arena-footprint
/// deltas for both.
#[derive(Clone, Debug, Serialize)]
pub struct ReclaimRow {
    /// Churn threads used for this row (reader threads are 2 extra, fixed).
    pub threads: usize,
    /// Allocate+retire cycles per churn thread.
    pub cycles_per_thread: usize,
    /// Total allocate+retire cycles of the row (`threads × cycles`).
    pub total_cycles: usize,
    /// Churn cycles per second through the leaking baseline (best round).
    pub leak_cycles_per_sec: f64,
    /// Churn cycles per second through the epoch reclaimer (best round).
    pub epoch_cycles_per_sec: f64,
    /// `epoch_cycles_per_sec / leak_cycles_per_sec` (same thread count).
    pub epoch_vs_leak: f64,
    /// Interned-arena entries added across **all** of the row's leak
    /// rounds: ~one per cycle (≈ `rounds × total_cycles`), the unbounded
    /// footprint the epoch reclaimer closes.
    pub leak_arena_growth: usize,
    /// Interned-arena entries added across all of the row's epoch rounds:
    /// bounded by the pin window + limbo transient (larger on 1-CPU hosts,
    /// where a descheduled pinned reader stalls recycling for a timeslice),
    /// never linear in the cycle count.
    pub epoch_arena_growth: usize,
    /// Fresh ids the epoch reclaimer minted during its rounds (its share of
    /// `epoch_arena_growth`).
    pub epoch_minted: u64,
    /// Retired ids the epoch reclaimer handed back out with a bumped
    /// generation during its rounds.
    pub epoch_recycled: u64,
    /// Relation walks the reader threads completed across both variants
    /// (sanity: the conflict plane was actually being read during churn).
    pub reader_walks: u64,
    /// `std::thread::available_parallelism()` of the measuring host; CI
    /// enforcement of the throughput bar is gated on it.
    pub host_cpus: usize,
}

/// Churn thread counts the reclaim bench sweeps.
pub const RECLAIM_THREADS: [usize; 3] = [1, 2, 4];

/// Reader threads running pinned conflict walks during every churn round.
const READERS: usize = 2;

/// One churn round against `reclaimer`: `threads` churners each run
/// `cycles` allocate→publish→retire cycles while [`READERS`] reader
/// threads pin and walk the published regions. Returns the churn span in
/// seconds (readers are untimed load) and the walks the readers completed.
fn churn_round(reclaimer: &impl Reclaimer, threads: usize, cycles: usize) -> (f64, u64) {
    let published: Vec<parking_lot::Mutex<Option<DynRegion>>> = (0..threads)
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    let stop = AtomicBool::new(false);
    let walks = std::sync::atomic::AtomicU64::new(0);
    let dyn_star = Rpl::new(vec![RplElement::name("__DynRegion"), RplElement::Star]);
    let partition = Rpl::parse("ReclaimBenchStatic:[7]");
    let mut secs = 0.0;
    std::thread::scope(|scope| {
        for r in 0..READERS {
            let published = &published;
            let stop = &stop;
            let walks = &walks;
            let reclaimer = &*reclaimer;
            let dyn_star = &dyn_star;
            let partition = &partition;
            scope.spawn(move || {
                let mut slot = r;
                while !stop.load(Ordering::Relaxed) {
                    slot = (slot + 1) % published.len();
                    let Some(region) = *published[slot].lock() else {
                        std::hint::spin_loop();
                        continue;
                    };
                    // The conflict-plane read the pin protocol protects:
                    // under the pin, a handle that passes the generation
                    // check names a region that cannot be recycled until
                    // the pin drops, so the relation walks below are
                    // era-consistent even though churners are retiring
                    // concurrently.
                    let pin = reclaimer.pin();
                    if reclaimer.is_current(region) {
                        let rpl = region.rpl();
                        assert!(
                            dyn_star.overlaps(&rpl),
                            "a region lives under __DynRegion:*"
                        );
                        assert!(
                            rpl.disjoint(partition),
                            "regions never alias static partitions"
                        );
                        walks.fetch_add(1, Ordering::Relaxed);
                    }
                    drop(pin);
                }
            });
        }
        secs = timed_parallel(threads, |t| {
            for _ in 0..cycles {
                let region = reclaimer.allocate();
                *published[t].lock() = Some(region);
                reclaimer.retire(region);
            }
        });
        stop.store(true, Ordering::Relaxed);
    });
    (secs, walks.load(Ordering::Relaxed))
}

/// Best-of-`rounds` churn throughput (cycles/second) plus total reader
/// walks across the rounds.
fn best_of(reclaimer: &impl Reclaimer, threads: usize, cycles: usize, rounds: usize) -> (f64, u64) {
    let mut best = f64::MAX;
    let mut walks = 0u64;
    for _ in 0..rounds {
        let (secs, w) = churn_round(reclaimer, threads, cycles);
        best = best.min(secs);
        walks += w;
    }
    ((threads * cycles) as f64 / best.max(1e-12), walks)
}

/// Runs the region-churn sweep: one [`ReclaimRow`] per churn thread count
/// in [`RECLAIM_THREADS`], epoch reclaimer vs leaking baseline on identical
/// workloads. Even in quick mode every row's epoch side performs ≥ 100k
/// create+drop cycles in total across its rounds, the scale at which an
/// unbounded footprint is unmistakable.
pub fn run_reclaim_bench(quick: bool) -> Vec<ReclaimRow> {
    let (cycles, rounds) = if quick { (25_000, 4) } else { (100_000, 5) };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    for threads in RECLAIM_THREADS {
        // Fresh reclaimer instances per row: each row's stats and arena
        // growth are attributable to exactly this thread count. The leak
        // baseline runs first and its growth is measured around its own
        // rounds only (the epoch side's mints are a separate delta).
        let leak = Leak::new();
        let arena_before = arena::len();
        let (leak_cps, leak_walks) = best_of(&leak, threads, cycles, rounds);
        let leak_growth = arena::len() - arena_before;

        let epoch = Epoch::new();
        let arena_before = arena::len();
        let (epoch_cps, epoch_walks) = best_of(&epoch, threads, cycles, rounds);
        let epoch_growth = arena::len() - arena_before;
        let stats = epoch.stats();

        rows.push(ReclaimRow {
            threads,
            cycles_per_thread: cycles,
            total_cycles: threads * cycles,
            leak_cycles_per_sec: leak_cps,
            epoch_cycles_per_sec: epoch_cps,
            epoch_vs_leak: epoch_cps / leak_cps.max(1e-12),
            leak_arena_growth: leak_growth,
            epoch_arena_growth: epoch_growth,
            epoch_minted: stats.minted,
            epoch_recycled: stats.recycled,
            reader_walks: leak_walks + epoch_walks,
            host_cpus,
        });
    }
    rows
}

/// Pretty-prints the reclaim microbenchmark rows.
pub fn print_reclaim_rows(rows: &[ReclaimRow]) {
    println!(
        "{:<8} {:>12} {:>14} {:>14} {:>10} {:>12} {:>12} {:>10}",
        "threads",
        "cycles",
        "leak cyc/s",
        "epoch cyc/s",
        "vs leak",
        "leak growth",
        "epoch growth",
        "recycled"
    );
    for r in rows {
        println!(
            "{:<8} {:>12} {:>14.0} {:>14.0} {:>9.2}x {:>12} {:>12} {:>10}",
            r.threads,
            r.total_cycles,
            r.leak_cycles_per_sec,
            r.epoch_cycles_per_sec,
            r.epoch_vs_leak,
            r.leak_arena_growth,
            r.epoch_arena_growth,
            r.epoch_recycled
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reclaim_rows_show_bounded_epoch_and_unbounded_leak() {
        // A tiny sweep (not the quick-mode workload: CI's smoke step runs
        // that) — enough to pin the structural claims: the leak side grows
        // the arena by ~total cycles, the epoch side stays bounded, and
        // the readers actually walked.
        let threads = 2;
        let cycles = 2_000;
        let leak = Leak::new();
        let before = arena::len();
        let (leak_cps, _) = best_of(&leak, threads, cycles, 1);
        let leak_growth = arena::len() - before;
        assert!(leak_cps > 0.0);
        assert!(
            leak_growth >= threads * cycles,
            "the leaking baseline mints every allocation ({leak_growth})"
        );

        let epoch = Epoch::new();
        let (epoch_cps, _) = best_of(&epoch, threads, cycles, 1);
        assert!(epoch_cps > 0.0);
        let stats = epoch.stats();
        assert_eq!(stats.minted + stats.recycled, stats.allocated);
        // Boundedness, checked deterministically: during the timed round a
        // reader descheduled *while pinned* (likely when this binary's
        // other tests oversubscribe the host) may stall recycling for
        // whole timeslices, so the round's own mint count is noisy. With
        // the readers gone no pin can stall the epoch, so a follow-up
        // sequential churn must recycle essentially every cycle.
        let minted_before = epoch.stats().minted;
        for _ in 0..1_000 {
            let region = epoch.allocate();
            epoch.retire(region);
        }
        let follow_up_mints = epoch.stats().minted - minted_before;
        assert!(
            follow_up_mints <= 8,
            "unpinned churn must recycle, not mint ({follow_up_mints} mints in 1000 cycles)"
        );
    }
}
