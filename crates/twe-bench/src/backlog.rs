//! Naive-scheduler backlog microbenchmark (`BENCH_backlog.json`).
//!
//! Measures the per-completion cost of the naive scheduler's wakeup path
//! as a function of backlog depth, for both wakeup disciplines:
//!
//! * **indexed** (`NaiveScheduler::new`) — completions consult only the
//!   waiter-index buckets their anchors hit, so per-completion cost tracks
//!   the *conflict chain length*, not the queue depth;
//! * **full_scan** (`NaiveScheduler::new_full_scan`) — the dissertation's
//!   literal discipline: every completion rescans the whole queue, so
//!   per-completion cost grows linearly with depth (and draining a backlog
//!   is quadratic).
//!
//! Each row drives a raw scheduler (no worker pool — the enable callback
//! is the work queue) through a `backlog`-deep batch of per-key write
//! chains (`writes K:[i % keys]`, keys scaled to keep chains ~8 long) and
//! reports nanoseconds per `task_done` plus the deterministic
//! `wake_scan_work` counter. The scheduled-CI scaling bar reads the
//! indexed rows: `per_done_ns` at 64k backlog must stay within 8x its 4k
//! value — quadratic wakeups fail that by an order of magnitude. The
//! full-scan discipline is measured only at the smaller depths for the
//! contrast column; at 64k it would be the quadratic grind the index
//! exists to avoid.

use serde::Serialize;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use twe_effects::EffectSet;
use twe_runtime::naive::NaiveScheduler;
use twe_runtime::scheduler::Scheduler;
use twe_runtime::task::TaskRecord;

/// One row of `BENCH_backlog.json`.
#[derive(Clone, Debug, Serialize)]
pub struct BacklogRow {
    /// Wakeup discipline: `"indexed"` or `"full_scan"`.
    pub mode: String,
    /// Queue depth the drain starts from.
    pub backlog: usize,
    /// Distinct conflict keys (chain length = `backlog / keys`).
    pub keys: usize,
    /// Mean wall-clock nanoseconds per `task_done` over the whole drain.
    pub per_done_ns: u64,
    /// Mean `wake_scan_work` units per completion (deterministic; the
    /// structural push-CI assertion uses this, not the timing).
    pub scan_work_per_done: u64,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_cpus: usize,
}

/// Backlog depths the indexed discipline is measured at.
pub const BACKLOG_DEPTHS_INDEXED: [usize; 3] = [4_096, 16_384, 65_536];

/// Backlog depths the full-scan contrast is measured at (stops before the
/// quadratic wall).
pub const BACKLOG_DEPTHS_FULL_SCAN: [usize; 2] = [4_096, 16_384];

fn measure(mode: &str, backlog: usize) -> BacklogRow {
    // Keys scale with depth so the chain length stays ~8: depth is the
    // variable under test, per-key contention is held fixed.
    let keys = (backlog / 8).max(1);
    let ready: Arc<Mutex<Vec<Arc<TaskRecord>>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = ready.clone();
    let enable: Box<dyn Fn(Arc<TaskRecord>) + Send + Sync> =
        Box::new(move |t| r2.lock().unwrap().push(t));
    let sched = match mode {
        "indexed" => NaiveScheduler::new(enable),
        "full_scan" => NaiveScheduler::new_full_scan(enable),
        _ => unreachable!("unknown mode {mode}"),
    };
    let tasks: Vec<Arc<TaskRecord>> = (0..backlog)
        .map(|i| {
            TaskRecord::new(
                i as u64,
                format!("b{i}"),
                EffectSet::parse(&format!("writes K:[{}]", i % keys)),
                false,
            )
        })
        .collect();
    sched.submit_batch(tasks);

    let started = Instant::now();
    let mut done = 0usize;
    while done < backlog {
        let next = ready.lock().unwrap().pop();
        let t = next.unwrap_or_else(|| panic!("backlog drain stalled at {done}/{backlog}"));
        t.mark_done();
        sched.task_done(&t);
        done += 1;
    }
    let elapsed = started.elapsed();

    BacklogRow {
        mode: mode.to_string(),
        backlog,
        keys,
        per_done_ns: (elapsed.as_nanos() / backlog as u128) as u64,
        scan_work_per_done: sched.wake_scan_work() / backlog as u64,
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Runs the backlog sweep. Quick mode keeps the 4k cells (both modes) —
/// enough for the structural push-CI check that indexed scan work per
/// completion stays an order of magnitude under full scan's; the scheduled
/// 64k/4k ≤ 8x timing bar needs the full sweep.
pub fn run_backlog_bench(quick: bool) -> Vec<BacklogRow> {
    let mut rows = Vec::new();
    let indexed: &[usize] = if quick {
        &BACKLOG_DEPTHS_INDEXED[..1]
    } else {
        &BACKLOG_DEPTHS_INDEXED
    };
    let full: &[usize] = if quick {
        &BACKLOG_DEPTHS_FULL_SCAN[..1]
    } else {
        &BACKLOG_DEPTHS_FULL_SCAN
    };
    for &backlog in indexed {
        eprintln!("# backlog cell: indexed depth={backlog}");
        rows.push(measure("indexed", backlog));
    }
    for &backlog in full {
        eprintln!("# backlog cell: full_scan depth={backlog}");
        rows.push(measure("full_scan", backlog));
    }
    rows
}

/// Pretty-prints the backlog rows.
pub fn print_backlog_rows(rows: &[BacklogRow]) {
    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>16}",
        "mode", "backlog", "keys", "per_done", "scan work/done"
    );
    for r in rows {
        println!(
            "{:<10} {:>8} {:>8} {:>10}ns {:>16}",
            r.mode, r.backlog, r.keys, r.per_done_ns, r.scan_work_per_done
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backlog_rows_show_the_index_beating_full_scan() {
        // Small depths so the test stays quick even in debug; the
        // structural claim is scale-free: at equal depth the indexed
        // discipline's deterministic scan work per completion must sit
        // far below full scan's (which rescans the whole queue).
        let indexed = measure("indexed", 2_048);
        let full = measure("full_scan", 2_048);
        assert_eq!(indexed.backlog, full.backlog);
        assert!(indexed.scan_work_per_done > 0);
        assert!(
            indexed.scan_work_per_done * 8 < full.scan_work_per_done,
            "indexed {} vs full {} scan work per completion",
            indexed.scan_work_per_done,
            full.scan_work_per_done
        );
        // Chain length is fixed, so doubling the depth must not blow up
        // indexed per-completion scan work (allow 2x noise headroom).
        let deeper = measure("indexed", 4_096);
        assert!(
            deeper.scan_work_per_done <= indexed.scan_work_per_done * 2 + 64,
            "indexed scan work grew with depth: {} at 4k vs {} at 2k",
            deeper.scan_work_per_done,
            indexed.scan_work_per_done
        );
    }
}
