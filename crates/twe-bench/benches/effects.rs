//! Micro-benchmarks of the effect system primitives: RPL disjointness and
//! inclusion checks and compound-effect coverage queries. These are the
//! operations on the scheduler's critical path (every insertion performs
//! several of them), so their cost bounds the per-task scheduling overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use twe_effects::{CompoundEffect, Effect, EffectSet, Rpl};

fn bench_rpl_relations(c: &mut Criterion) {
    let pairs: Vec<(Rpl, Rpl)> = vec![
        (Rpl::parse("A"), Rpl::parse("B")),
        (Rpl::parse("A:B:C"), Rpl::parse("A:B:D")),
        (Rpl::parse("A:*"), Rpl::parse("A:B:C")),
        (Rpl::parse("A:[1]"), Rpl::parse("A:[?]")),
        (Rpl::parse("Data:[17]"), Rpl::parse("Data:[17]")),
        (Rpl::parse("A:*:X"), Rpl::parse("A:B")),
    ];
    c.bench_function("rpl_disjoint", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for (x, y) in &pairs {
                acc += u32::from(black_box(x).disjoint(black_box(y)));
            }
            acc
        })
    });
    c.bench_function("rpl_included_in", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for (x, y) in &pairs {
                acc += u32::from(black_box(x).included_in(black_box(y)));
            }
            acc
        })
    });
}

fn bench_effect_sets(c: &mut Criterion) {
    let task_a = EffectSet::parse("reads Root, writes Clusters:[5]");
    let task_b = EffectSet::parse("reads Root, writes Clusters:[9]");
    let wild = EffectSet::parse("writes Root:*");
    c.bench_function("effectset_non_interfering", |b| {
        b.iter(|| {
            black_box(task_a.non_interfering(black_box(&task_b)))
                ^ black_box(task_a.non_interfering(black_box(&wild)))
        })
    });
    c.bench_function("effectset_included_in", |b| {
        b.iter(|| black_box(&task_a).included_in(black_box(&wild)))
    });
}

fn bench_compound_coverage(c: &mut Criterion) {
    // The covering effect after a typical spawn/join sequence.
    let covering = CompoundEffect::declared(EffectSet::parse("writes Top, writes Bottom"))
        .sub(EffectSet::parse("writes Top"))
        .add(EffectSet::parse("writes Top"))
        .sub(EffectSet::parse("writes Bottom"));
    let probe = Effect::parse("writes Top").unwrap();
    c.bench_function("compound_covers", |b| {
        b.iter(|| black_box(&covering).covers(black_box(&probe)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(10);
    targets = bench_rpl_relations, bench_effect_sets, bench_compound_coverage
}
criterion_main!(benches);
