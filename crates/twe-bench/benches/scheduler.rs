//! Micro-benchmarks of the two schedulers' task-dispatch throughput: the cost
//! of `executeLater` + effect checks + completion for batches of tasks with
//! disjoint effects (the scalable case the tree scheduler is built for) and
//! with identical effects (the fully-serialised worst case), plus the
//! fine-grained critical-section pattern of K-Means (`execute`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use twe_effects::EffectSet;
use twe_runtime::{Runtime, SchedulerKind};

fn dispatch_batch(rt: &Runtime, n: usize, disjoint: bool) {
    let futures: Vec<_> = (0..n)
        .map(|i| {
            let effects = if disjoint {
                EffectSet::parse(&format!("writes Data:[{i}]"))
            } else {
                EffectSet::parse("writes Data")
            };
            rt.execute_later("bench", effects, move |_| black_box(i))
        })
        .collect();
    for f in futures {
        black_box(f.wait());
    }
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("task_dispatch");
    group.sample_size(20);
    for kind in [SchedulerKind::Naive, SchedulerKind::Tree] {
        for (label, disjoint) in [("disjoint", true), ("conflicting", false)] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}-{label}", kind.label()), 128),
                &128usize,
                |b, &n| {
                    let rt = Runtime::new(2, kind);
                    b.iter(|| dispatch_batch(&rt, n, disjoint));
                },
            );
        }
    }
    group.finish();
}

fn bench_batched_submission(c: &mut Criterion) {
    // Per-task `execute_later` vs one `submit_all` round for a disjoint
    // fan-out wave, through the full runtime (execution included; the
    // `figures --fig submit` harness isolates pure admission).
    let mut group = c.benchmark_group("batched_submission");
    group.sample_size(15);
    for kind in [SchedulerKind::Naive, SchedulerKind::Tree] {
        for (label, batched) in [("per-task", false), ("batched", true)] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}-{label}", kind.label()), 256),
                &256usize,
                |b, &n| {
                    let rt = Runtime::new(2, kind);
                    b.iter(|| {
                        let futures: Vec<_> = if batched {
                            rt.submit_all((0..n).map(|i| {
                                (
                                    "bench",
                                    EffectSet::parse(&format!("writes Fleet:Stage:Data:[{i}]")),
                                    move |_: &twe_runtime::TaskCtx<'_>| black_box(i),
                                )
                            }))
                        } else {
                            (0..n)
                                .map(|i| {
                                    rt.execute_later(
                                        "bench",
                                        EffectSet::parse(&format!("writes Fleet:Stage:Data:[{i}]")),
                                        move |_| black_box(i),
                                    )
                                })
                                .collect()
                        };
                        futures.into_iter().map(|f| f.wait()).sum::<usize>()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_critical_sections(c: &mut Criterion) {
    // Outer tasks on disjoint regions, each running a short critical-section
    // task on one of a few shared regions — the K-Means accumulate pattern.
    let mut group = c.benchmark_group("critical_sections");
    group.sample_size(15);
    for kind in [SchedulerKind::Naive, SchedulerKind::Tree] {
        group.bench_function(kind.label(), |b| {
            let rt = Runtime::new(2, kind);
            b.iter(|| {
                let futures: Vec<_> = (0..64)
                    .map(|i| {
                        rt.execute_later(
                            "outer",
                            EffectSet::parse(&format!("writes Local:[{i}]")),
                            move |ctx| {
                                ctx.execute(
                                    "crit",
                                    EffectSet::parse(&format!("writes Shared:[{}]", i % 8)),
                                    move |_| black_box(i),
                                )
                            },
                        )
                    })
                    .collect();
                futures.into_iter().map(|f| f.wait()).sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(10);
    targets = bench_dispatch, bench_batched_submission, bench_critical_sections
}
criterion_main!(benches);
