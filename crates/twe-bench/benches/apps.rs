//! Criterion versions of the application benchmarks at reduced sizes, so
//! `cargo bench` gives statistically sound per-commit numbers for the three
//! benchmark families (fork-join style, fine-grain critical sections, dynamic
//! effects) without the multi-minute figure sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use twe_apps::{imageedit, kmeans, refine};
use twe_runtime::{Runtime, SchedulerKind};

fn bench_kmeans(c: &mut Criterion) {
    let cfg = kmeans::KMeansConfig {
        n_points: 2_000,
        n_clusters: 128,
        n_features: 8,
        seed: 1,
        points_per_task: 4,
    };
    let input = kmeans::generate(&cfg);
    let mut group = c.benchmark_group("kmeans_2k_points");
    group.sample_size(10);
    group.bench_function("seq", |b| {
        b.iter(|| black_box(kmeans::run_sequential(&input)))
    });
    for kind in [SchedulerKind::Naive, SchedulerKind::Tree] {
        group.bench_function(format!("twe-{}", kind.label()), |b| {
            let rt = Runtime::new(2, kind);
            b.iter(|| black_box(kmeans::run_twe(&rt, &input)))
        });
    }
    group.bench_function("sync", |b| {
        b.iter(|| black_box(kmeans::run_sync_baseline(4, &input)))
    });
    group.finish();
}

fn bench_imageedit(c: &mut Criterion) {
    let cfg = imageedit::ImageEditConfig {
        width: 512,
        height: 512,
        blocks: 32,
        filter: imageedit::Filter::EdgeDetect,
        seed: 2,
    };
    let img = imageedit::Image::synthetic(cfg.width, cfg.height, cfg.seed);
    let mut group = c.benchmark_group("imageedit_edge_512");
    group.sample_size(10);
    group.bench_function("seq", |b| {
        b.iter(|| black_box(imageedit::run_sequential(&cfg, &img)))
    });
    group.bench_function("twe-tree", |b| {
        let rt = Runtime::new(2, SchedulerKind::Tree);
        b.iter(|| black_box(imageedit::run_twe(&rt, &cfg, &img)))
    });
    group.finish();
}

fn bench_refine(c: &mut Criterion) {
    let cfg = refine::RefineConfig {
        n_triangles: 5_000,
        bad_fraction: 0.2,
        max_cavity: 6,
        seed: 3,
    };
    let mut group = c.benchmark_group("refine_5k_triangles");
    group.sample_size(10);
    group.bench_function("seq", |b| {
        b.iter(|| {
            let mesh = refine::generate(&cfg);
            black_box(refine::run_sequential(&cfg, &mesh))
        })
    });
    group.bench_function("twe-dynamic", |b| {
        let rt = Runtime::new(2, SchedulerKind::Tree);
        b.iter(|| {
            let mesh = refine::generate(&cfg);
            black_box(refine::run_twe(&rt, &cfg, &mesh))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(10);
    targets = bench_kmeans, bench_imageedit, bench_refine
}
criterion_main!(benches);
