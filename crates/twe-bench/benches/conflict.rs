//! Criterion microbenchmark of the RPL conflict test (disjointness) on
//! deep-RPL workloads: the interned id-based representation versus the
//! element-wise oracle it replaced. This is the single hottest operation of
//! both schedulers — every insertion, recheck and rescan performs it — so
//! its cost bounds the fine-grained scheduling overhead of Figure 6.3.
//!
//! The workload shapes come from [`twe_bench::conflict_paths`], the same
//! generator the `figures --fig conflict` throughput record uses, so the
//! criterion numbers and the CI-tracked `BENCH_conflict.json` always measure
//! the same thing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use twe_bench::{anyindex_paths, conflict_paths, disjoint_effect_sets};
use twe_effects::rpl::oracle;
use twe_effects::Rpl;

fn bench_conflict(c: &mut Criterion) {
    for depth in [4usize, 8] {
        for wildcard in [false, true] {
            let elems = conflict_paths(depth, 64, wildcard);
            let rpls: Vec<Rpl> = elems.iter().map(|p| Rpl::new(p.clone())).collect();
            let tag = if wildcard { "wild" } else { "concrete" };
            c.bench_function(format!("conflict_id_depth{depth}_{tag}"), |b| {
                b.iter(|| {
                    let mut acc = 0u32;
                    for x in &rpls {
                        for y in &rpls {
                            acc += u32::from(black_box(x).disjoint(black_box(y)));
                        }
                    }
                    acc
                })
            });
            c.bench_function(format!("conflict_elementwise_depth{depth}_{tag}"), |b| {
                b.iter(|| {
                    let mut acc = 0u32;
                    for x in &elems {
                        for y in &elems {
                            acc += u32::from(!oracle::overlaps(black_box(x), black_box(y)));
                        }
                    }
                    acc
                })
            });
        }
    }

    // The `P:[?]` shape: trailing-any-index wildcards against concrete index
    // children, resolved by the dedicated O(1) parent-id check.
    for depth in [2usize, 8] {
        let elems = anyindex_paths(depth, 64);
        let rpls: Vec<Rpl> = elems.iter().map(|p| Rpl::new(p.clone())).collect();
        c.bench_function(format!("conflict_id_depth{depth}_anyindex"), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for x in &rpls {
                    for y in &rpls {
                        acc += u32::from(black_box(x).disjoint(black_box(y)));
                    }
                }
                acc
            })
        });
        c.bench_function(format!("conflict_elementwise_depth{depth}_anyindex"), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for x in &elems {
                    for y in &elems {
                        acc += u32::from(!oracle::overlaps(black_box(x), black_box(y)));
                    }
                }
                acc
            })
        });
    }

    // Set-level non-interference on pairwise-disjoint 8-effect sets:
    // summary rejection vs the all-pairs loop it filters.
    let sets = disjoint_effect_sets(64, 8);
    c.bench_function("conflict_set_summary_8x8_disjoint", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for x in &sets {
                for y in &sets {
                    acc += u32::from(black_box(x).non_interfering(black_box(y)));
                }
            }
            acc
        })
    });
    c.bench_function("conflict_set_allpairs_8x8_disjoint", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for x in &sets {
                for y in &sets {
                    let ni = x.iter().all(|ex| y.iter().all(|ey| ex.non_interfering(ey)));
                    acc += u32::from(black_box(ni));
                }
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(10);
    targets = bench_conflict
}
criterion_main!(benches);
