//! Dynamic effects (chapter 7): algorithms whose effects can only be
//! discovered while the task runs. Runs the Delaunay-style cavity refinement
//! and the greedy graph colouring benchmarks and reports the abort/retry
//! statistics that §7.6 discusses as the main overhead of the approach.
//!
//! Run with `cargo run --release --example dynamic_graph`.

use twe::apps::{coloring, refine};
use twe::runtime::{Runtime, SchedulerKind};

fn main() {
    let rt = Runtime::builder().scheduler(SchedulerKind::Tree).build();

    // Mesh refinement.
    let cfg = refine::RefineConfig {
        n_triangles: 20_000,
        bad_fraction: 0.25,
        max_cavity: 6,
        seed: 42,
    };
    let mesh = refine::generate(&cfg);
    let start = std::time::Instant::now();
    let out = refine::run_twe(&rt, &cfg, &mesh);
    let took = start.elapsed();
    assert!(
        refine::validate(&cfg, &mesh, &out),
        "refinement invariants violated"
    );
    println!(
        "refine: {} refinements, {} cavity touches in {took:?}",
        out.refinements, out.touches
    );

    // Graph colouring.
    let ccfg = coloring::ColoringConfig {
        n_nodes: 20_000,
        avg_degree: 8,
        seed: 42,
    };
    let graph = coloring::generate(&ccfg);
    let start = std::time::Instant::now();
    let cout = coloring::run_twe(&rt, &graph);
    let took = start.elapsed();
    assert!(coloring::validate(&graph), "colouring is not proper");
    println!(
        "coloring: {} nodes coloured with {} colours in {took:?}",
        cout.colored, cout.colors_used
    );

    let stats = rt.stats();
    println!(
        "dynamic-effect activity: {} acquisitions, {} conflicts, {} task retries",
        stats.dynamic.acquires, stats.dynamic.conflicts, stats.task_retries
    );
}
