//! FourWins as an actor-style application (§6.1): game state, board, view and
//! players are modules with private regions; messages between them are tasks
//! whose effects name the target module's region. The computer player runs
//! the parallel AI search (the measured part of Figure 6.2) while the "GUI"
//! keeps processing events concurrently — the combination of unstructured and
//! structured concurrency the TWE model is designed for.
//!
//! Run with `cargo run --release --example fourwins_interactive`.

use std::sync::Arc;
use twe::apps::fourwins::{self, Board, FourWinsConfig};
use twe::apps::util::RegionCell;
use twe::effects::EffectSet;
use twe::runtime::{Runtime, SchedulerKind};

fn main() {
    let rt = Runtime::builder().scheduler(SchedulerKind::Tree).build();

    // Module state, each in its own region.
    let board = Arc::new(RegionCell::new(Board::new()));
    let view_log = Arc::new(RegionCell::new(Vec::<String>::new()));

    // Human moves arrive as "UI events"; after each one the controller asks
    // the board module to apply it, the view module to refresh, and the AI
    // to pick a reply.
    let human_moves = [3usize, 2, 4, 3];
    let mut game_moves: Vec<usize> = Vec::new();

    for (turn, &col) in human_moves.iter().enumerate() {
        // controller.onMove -> board.applyMove (message = task on Board).
        let b = board.clone();
        rt.run(
            "board.applyMove",
            EffectSet::parse("writes Board"),
            move |_| {
                b.get_mut().drop_piece(col, 1);
            },
        );
        game_moves.push(col);

        // view.refresh runs concurrently with the AI below (reads Board,
        // writes View — non-interfering with the AI's scratch regions).
        let b = board.clone();
        let v = view_log.clone();
        let view_future = rt.execute_later(
            "view.refresh",
            EffectSet::parse("reads Board, writes View"),
            move |_| {
                v.get_mut()
                    .push(format!("turn {turn}: human played column {col}"));
                b.get().legal_moves().len()
            },
        );

        // ai.chooseMove: the parallel search of Figure 6.2.
        let config = FourWinsConfig {
            depth: 6,
            parallel_depth: 2,
            opening: game_moves.clone(),
        };
        let reply = fourwins::run_twe(&rt, &config);
        let open_columns = view_future.wait();

        let b = board.clone();
        rt.run(
            "board.applyMove",
            EffectSet::parse("writes Board"),
            move |_| {
                b.get_mut().drop_piece(reply.best_move, 2);
            },
        );
        game_moves.push(reply.best_move);
        println!(
            "turn {turn}: human -> {col}, computer -> {} (score {}, {} columns open)",
            reply.best_move, reply.score, open_columns
        );
    }

    println!("view log:");
    for line in view_log.get().iter() {
        println!("  {line}");
    }
    println!("runtime stats: {:?}", rt.stats());
}
