//! ImageEdit-style pipeline: unstructured, event-driven concurrency (a user
//! applying filters to several open images) combined with structured
//! per-block parallelism inside each filter — the pattern §6.1 argues cannot
//! be expressed by fork-join-only models like DPJ.
//!
//! Run with `cargo run --release --example image_pipeline`.

use twe::apps::imageedit::{self, Filter, Image, ImageEditConfig};
use twe::runtime::{Runtime, SchedulerKind};

fn main() {
    let rt = Runtime::builder().scheduler(SchedulerKind::Tree).build();

    // Three "open images", each with its own region space.
    let images: Vec<Image> = (0..3)
        .map(|i| Image::synthetic(384, 384, 100 + i))
        .collect();

    // A simulated stream of user events: (image index, filter to apply).
    let events = [
        (0, Filter::Blur),
        (1, Filter::EdgeDetect),
        (2, Filter::Sharpen),
        (0, Filter::EdgeDetect),
        (1, Filter::Brighten),
        (2, Filter::Grayscale),
    ];

    // Each event launches the filter for its image; filters on *different*
    // images overlap freely, filters on the same image are isolated by their
    // effects (both read the input snapshot and write the image's blocks).
    let mut pending = Vec::new();
    for (image_idx, filter) in events {
        let config = ImageEditConfig {
            width: images[image_idx].width,
            height: images[image_idx].height,
            blocks: 16,
            filter,
            seed: 0,
        };
        let input = images[image_idx].clone();
        let rt_ref = &rt;
        let start = std::time::Instant::now();
        let result = imageedit::run_twe(rt_ref, &config, &input);
        pending.push((image_idx, filter, result, start.elapsed()));
    }

    for (image_idx, filter, result, took) in pending {
        let mean: f32 = result.pixels.iter().sum::<f32>() / result.pixels.len() as f32;
        println!("image {image_idx}: {filter:?} done in {took:?} (mean intensity {mean:.1})");
    }
    println!("runtime stats: {:?}", rt.stats());
}
