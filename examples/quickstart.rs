//! Quickstart: the Tasks With Effects model in five minutes.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The example walks through the three layers of the library:
//! 1. the effect system (regions, RPLs, interference);
//! 2. the runtime (executeLater/getValue, spawn/join, effect transfer);
//! 3. the static covering-effect checker over the task IR.

use twe::analysis::{check_program, Algorithm};
use twe::effects::{Effect, EffectSet, Rpl};
use twe::runtime::{Runtime, SchedulerKind};

fn main() {
    // ------------------------------------------------------------------
    // 1. Effects and regions.
    // ------------------------------------------------------------------
    let top = Effect::write(Rpl::parse("Image:Top"));
    let bottom = Effect::write(Rpl::parse("Image:Bottom"));
    let whole = Effect::write(Rpl::parse("Image:*"));
    println!("`{top}` # `{bottom}`  -> {}", top.non_interfering(&bottom));
    println!("`{top}` # `{whole}`   -> {}", top.non_interfering(&whole));
    println!("`{top}` ⊆ `{whole}`   -> {}", top.included_in(&whole));

    // ------------------------------------------------------------------
    // 2. The runtime: tasks with effects.
    // ------------------------------------------------------------------
    let rt = Runtime::builder()
        .threads(4)
        .scheduler(SchedulerKind::Tree)
        .build();

    // Unstructured concurrency: two independent tasks with disjoint effects
    // run in parallel; a third task that conflicts with the first waits.
    let gui = rt.execute_later("gui", EffectSet::parse("writes GUIData"), |_| {
        "gui event handled"
    });
    let contrast = rt.execute_later(
        "increaseContrast",
        EffectSet::parse("writes Image:Top, writes Image:Bottom"),
        |ctx| {
            // Structured parallelism inside the task: spawn a child for the
            // top half (transferring `writes Image:Top` to it), process the
            // bottom half in place, then join the child back.
            let top = ctx.spawn("topHalf", EffectSet::parse("writes Image:Top"), |_| 21u64);
            let bottom = 21u64;
            top.join(ctx) + bottom
        },
    );
    println!("gui task      -> {}", gui.wait());
    println!("contrast task -> {}", contrast.wait());

    // A critical section: `execute` creates a task and waits for it, so the
    // body is atomic with respect to every other task touching `Stats`.
    rt.run("outer", EffectSet::parse("writes Scratch"), |ctx| {
        ctx.execute("bump statistics", EffectSet::parse("writes Stats"), |_| ())
    });

    // A fan-out phase: admit the whole wave as ONE batch. Same scheduling
    // outcome as per-task `execute_later`, but the scheduler pays one
    // admission round (one tree descent, one recheck round) for the wave.
    let shards = rt.submit_all((0..64u64).map(|i| {
        (
            format!("shard{i}"),
            EffectSet::parse(&format!("writes Data:[{i}]")),
            move |_: &twe::runtime::TaskCtx<'_>| i * i,
        )
    }));
    let sum: u64 = shards.iter().map(|f| f.wait()).sum();
    println!("batched fan-out  -> 64 shard tasks, sum of squares = {sum}");

    // ------------------------------------------------------------------
    // 3. Static covering-effect checking over the task IR.
    // ------------------------------------------------------------------
    let program = twe::analysis::examples::image_contrast();
    let report = check_program(&program, Algorithm::Structural);
    println!("image_contrast program checks cleanly: {}", report.ok());

    let buggy = twe::analysis::examples::use_after_spawn();
    let report = check_program(&buggy, Algorithm::Structural);
    println!("use_after_spawn errors:");
    for error in &report.errors {
        println!("  {error}");
    }
}
